"""RPL3xx: failpoint hygiene.

* **RPL301** — a failpoint registered but never hit (orphan), or a hit
  naming a failpoint nothing registers.
* **RPL302** — the same failpoint name registered more than once.
* **RPL303** — a declared I/O boundary
  (:data:`~repro.lint.lock_hierarchy.IO_BOUNDARIES`) whose body neither
  hits a failpoint nor forwards one.

A "hit" is ``inject_io_fault(FP_X)`` / ``FAULTS.hit(FP_X)`` (directly or
inside a retry lambda); passing a resolvable failpoint constant as *any*
call argument also counts as a use, because modules like
:mod:`repro.perf.batch` take the failpoint as a parameter and hit it on
behalf of the caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.findings import LintFinding
from repro.lint.lock_hierarchy import IO_BOUNDARIES
from repro.lint.model import ProjectModel, SourceFile

__all__ = ["run"]

_HIT_FUNCS = frozenset({"inject_io_fault", "hit"})


@dataclass
class _Site:
    name: str
    path: str
    line: int
    column: int


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _literal_str(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _collect_constants(source: SourceFile) -> dict[str, str]:
    """Module-level ``FP_X = register_failpoint("name")`` bindings."""
    constants: dict[str, str] = {}
    for statement in source.tree.body:
        if (
            isinstance(statement, ast.Assign)
            and isinstance(statement.value, ast.Call)
            and _call_name(statement.value.func) == "register_failpoint"
            and statement.value.args
        ):
            name = _literal_str(statement.value.args[0])
            if name is None:
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = name
    return constants


def _resolve(node: ast.expr, constants: dict[str, str]) -> "str | None":
    literal = _literal_str(node)
    if literal is not None:
        return literal
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.Attribute):  # module.FP_X
        return constants.get(node.attr)
    return None


def run(model: ProjectModel) -> "list[LintFinding]":
    findings: list[LintFinding] = []
    registrations: list[_Site] = []
    used: set[str] = set()
    hits: list[_Site] = []
    #: constant name -> failpoint name, across all linted modules (names
    #: are unique per RPL302, so a flat namespace is safe)
    all_constants: dict[str, str] = {}
    per_file_constants: dict[str, dict[str, str]] = {}

    for source in model.files:
        constants = _collect_constants(source)
        per_file_constants[source.path] = constants
        all_constants.update(constants)

    for source in model.files:
        constants = dict(all_constants)
        constants.update(per_file_constants[source.path])
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name == "register_failpoint" and node.args:
                fp = _literal_str(node.args[0])
                if fp is not None:
                    registrations.append(
                        _Site(fp, source.path, node.lineno, node.col_offset)
                    )
            elif name in _HIT_FUNCS and node.args:
                fp = _resolve(node.args[0], constants)
                if fp is not None:
                    used.add(fp)
                    hits.append(
                        _Site(fp, source.path, node.lineno, node.col_offset)
                    )
                elif isinstance(node.args[0], ast.Constant):
                    hits.append(
                        _Site(
                            repr(node.args[0].value),
                            source.path,
                            node.lineno,
                            node.col_offset,
                        )
                    )
            else:
                # a failpoint constant forwarded as any argument is a use
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords if kw.value is not None
                ]:
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        fp = _resolve(arg, constants)
                        if fp is not None:
                            used.add(fp)

    registered_names: dict[str, _Site] = {}
    for site in registrations:
        if site.name in registered_names:
            first = registered_names[site.name]
            findings.append(
                LintFinding.make(
                    "RPL302",
                    f"failpoint {site.name!r} registered more than once "
                    f"(first at {first.path}:{first.line})",
                    path=site.path,
                    line=site.line,
                    column=site.column,
                    symbol=site.name,
                )
            )
        else:
            registered_names[site.name] = site

    for name, site in sorted(registered_names.items()):
        if name not in used:
            findings.append(
                LintFinding.make(
                    "RPL301",
                    f"failpoint {name!r} is registered but never hit or "
                    "forwarded",
                    path=site.path,
                    line=site.line,
                    column=site.column,
                    symbol=name,
                )
            )
    for site in hits:
        if site.name not in registered_names:
            findings.append(
                LintFinding.make(
                    "RPL301",
                    f"failpoint {site.name!r} is hit but never registered",
                    path=site.path,
                    line=site.line,
                    column=site.column,
                    symbol=site.name,
                )
            )

    # -- RPL303: every declared I/O boundary touches a failpoint ------------
    for source in model.files:
        constants = dict(all_constants)
        constants.update(per_file_constants[source.path])
        boundaries = {
            qualname
            for module, qualname in IO_BOUNDARIES
            if module == source.module
        }
        if not boundaries:
            continue
        for qualname, node in _iter_functions(source.tree):
            if qualname not in boundaries:
                continue
            if not _touches_failpoint(node, constants):
                findings.append(
                    LintFinding.make(
                        "RPL303",
                        f"I/O boundary {source.module}.{qualname} neither "
                        "hits nor forwards a registered failpoint",
                        path=source.path,
                        line=node.lineno,
                        column=node.col_offset,
                        symbol=qualname,
                    )
                )
    return findings


def _iter_functions(
    tree: ast.Module,
) -> "Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]":
    """Yield (qualname, node) for module functions and class methods."""
    for statement in tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement.name, statement
        elif isinstance(statement, ast.ClassDef):
            for sub in statement.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{statement.name}.{sub.name}", sub


def _touches_failpoint(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    constants: dict[str, str],
) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        name = _call_name(sub.func)
        if name in _HIT_FUNCS and sub.args:
            if _resolve(sub.args[0], constants) is not None:
                return True
        for arg in list(sub.args) + [
            kw.value for kw in sub.keywords if kw.value is not None
        ]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                if _resolve(arg, constants) is not None:
                    return True
    return False
