"""Finding model for reprolint: the RPL rule catalog, findings, reports.

A :class:`LintFinding` is one diagnostic — rule code, message, source
span, and the symbol (``Class.method`` or failpoint name) it concerns.
:class:`LintReport` aggregates findings for one run and implements the
CLI exit-code contract shared with ``repro analyze``:

* ``2`` — at least one error-severity finding,
* ``1`` — warnings only, under ``--strict``,
* ``0`` — clean (or warnings without ``--strict``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Iterator

__all__ = [
    "LintFinding",
    "LintReport",
    "LintSeverity",
    "RULE_CATALOG",
]


class LintSeverity(Enum):
    WARNING = "warning"
    ERROR = "error"


#: code -> (default severity, one-line rule summary).  The authoritative
#: prose catalogue lives in ``docs/lint.md``.
RULE_CATALOG: dict[str, tuple[LintSeverity, str]] = {
    # -- RPL0xx: framework/self diagnostics ---------------------------------
    "RPL001": (LintSeverity.ERROR, "source file failed to parse"),
    "RPL002": (LintSeverity.WARNING, "stale baseline entry matches no finding"),
    # -- RPL1xx: lock-order -------------------------------------------------
    "RPL101": (LintSeverity.ERROR, "lock acquisition edge contradicts the declared hierarchy"),
    "RPL102": (LintSeverity.ERROR, "cycle in the lock-acquisition graph"),
    "RPL103": (LintSeverity.WARNING, "lock attribute is not declared in the lock hierarchy"),
    # -- RPL2xx: shared-state guards ----------------------------------------
    "RPL201": (LintSeverity.ERROR, "guarded attribute written outside its lock scope"),
    # -- RPL3xx: failpoint hygiene ------------------------------------------
    "RPL301": (LintSeverity.ERROR, "failpoint registered but never hit"),
    "RPL302": (LintSeverity.ERROR, "failpoint name registered more than once"),
    "RPL303": (LintSeverity.ERROR, "I/O boundary carries no failpoint hit"),
    # -- RPL4xx: observability hygiene --------------------------------------
    "RPL401": (LintSeverity.ERROR, "metric name violates the registry naming convention"),
    "RPL402": (LintSeverity.ERROR, "span opened without a close on all paths"),
    # -- RPL5xx: error taxonomy ---------------------------------------------
    "RPL501": (LintSeverity.ERROR, "untyped exception may escape a public entry point"),
}


@dataclass(frozen=True)
class LintFinding:
    """One reprolint diagnostic, anchored to a source span."""

    rule: str
    message: str
    severity: LintSeverity
    path: str
    line: int
    column: int
    #: the ``Class.method``, attribute, or failpoint name concerned —
    #: part of the baseline key, so findings survive line-number churn
    symbol: str

    @classmethod
    def make(
        cls,
        rule: str,
        message: str,
        *,
        path: str,
        line: int = 0,
        column: int = 0,
        symbol: str = "",
        severity: "LintSeverity | None" = None,
    ) -> "LintFinding":
        if rule not in RULE_CATALOG:
            raise KeyError(f"unknown reprolint rule {rule!r}")
        default, _summary = RULE_CATALOG[rule]
        return cls(
            rule=rule,
            message=message,
            severity=severity if severity is not None else default,
            path=path,
            line=line,
            column=column,
            symbol=symbol,
        )

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Stable identity used for baseline matching: the rule, the
        file's path, and the symbol — deliberately *not* the line number,
        which churns on every edit above the finding."""
        return (self.rule, self.path, self.symbol)

    def to_text(self) -> str:
        location = f"{self.path}:{self.line}:{self.column}"
        return f"{location}: {self.severity.value} {self.rule}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
        }


class LintReport:
    """All findings from one ``repro lint`` run."""

    def __init__(
        self,
        findings: Iterable[LintFinding] = (),
        *,
        baselined: int = 0,
        files_checked: int = 0,
    ) -> None:
        self.findings = list(findings)
        #: findings suppressed by the committed baseline this run
        self.baselined = baselined
        self.files_checked = files_checked

    def add(self, finding: LintFinding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[LintFinding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[LintFinding]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.findings)

    def codes(self) -> set[str]:
        return {finding.rule for finding in self.findings}

    @property
    def has_errors(self) -> bool:
        return any(f.severity is LintSeverity.ERROR for f in self.findings)

    @property
    def is_clean(self) -> bool:
        return not self.findings

    def sorted(self) -> list[LintFinding]:
        return sorted(
            self.findings,
            key=lambda f: (f.path, f.line, f.column, f.rule, f.symbol),
        )

    def exit_code(self, strict: bool = False) -> int:
        """0/1/2 contract shared with ``repro analyze``: errors always
        exit 2; warnings exit 1 only under ``--strict``."""
        if self.has_errors:
            return 2
        if strict and self.findings:
            return 1
        return 0

    def to_text(self) -> str:
        lines = [finding.to_text() for finding in self.sorted()]
        n_err = sum(1 for f in self.findings if f.severity is LintSeverity.ERROR)
        n_warn = len(self.findings) - n_err
        summary = (
            f"{self.files_checked} file(s) checked: "
            f"{n_err} error(s), {n_warn} warning(s)"
        )
        if self.baselined:
            summary += f", {self.baselined} baselined"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.sorted()],
                "baselined": self.baselined,
                "files_checked": self.files_checked,
            },
            indent=2,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LintReport({len(self.findings)} findings, {self.baselined} baselined)"
