"""The declared lock hierarchy and thread-shared class registry.

This module is the **source of truth** the prose in ``docs/robustness.md``
used to carry: which classes own locks, what those locks guard, and the
one total order in which locks may nest.  Both enforcement sides read it —
the static lock-order checker (:mod:`repro.lint.check_locks`) validates
every ``with self._lock:`` call edge against :data:`LOCK_ORDER`, and the
runtime witness (:mod:`repro.lint.lockdep`) ranks live acquisitions with
:func:`lock_rank`.

Adding a lock to the codebase means adding it here first; reprolint's
RPL103 flags locks it discovers that this module does not declare.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ENTRY_POINTS",
    "GuardSpec",
    "IO_BOUNDARIES",
    "LOCK_ORDER",
    "THREAD_SHARED",
    "lock_rank",
]


#: Qualified lock names, **outermost first**: a thread holding lock at
#: index ``i`` may only acquire locks at index ``> i``.  This is a total
#: order over every lock in the engine — coarse service-level locks
#: nest around cube/engine locks, which nest around leaf accounting
#: locks (metrics instruments are innermost: any module may update a
#: counter while holding anything else).
LOCK_ORDER: tuple[str, ...] = (
    "_Chaos.lock",
    "_ShardChaos.lock",
    "QueryService._lock",
    "ShardedQueryService._lock",
    # The supervisor nests inside the sharded service (close order) and
    # outside the per-shard breakers it probes and the metrics it bumps.
    "ShardSupervisor._lock",
    "TenantQuotas._lock",
    "Warehouse._snapshot_lock",
    # The catalog lock nests *inside* service/warehouse scopes but
    # *outside* cube, cache and journal locks: every catalog op may copy
    # cubes (Cube._lock), consult the materialization cache
    # (ScenarioCache._lock) and append to its WAL (CatalogJournal._lock).
    "ScenarioCatalog._lock",
    "CatalogJournal._lock",
    "CircuitBreaker._lock",
    "Cube._lock",
    "RollupIndex._lock",
    "ScenarioCache._lock",
    "SlowQueryLog._lock",
    "FaultRegistry._lock",
    "ChunkStore._lock",
    "MetricsRegistry._lock",
    "Counter._lock",
    "Gauge._lock",
    "Histogram._lock",
)

_RANKS: dict[str, int] = {name: rank for rank, name in enumerate(LOCK_ORDER)}


def lock_rank(name: str) -> "int | None":
    """Rank of a qualified lock name in :data:`LOCK_ORDER` (0 is the
    outermost); ``None`` for locks outside the declared hierarchy."""
    return _RANKS.get(name)


@dataclass(frozen=True)
class GuardSpec:
    """What one thread-shared class guards: the lock attribute, and the
    instance attributes that may only be written inside its scope."""

    lock_attr: str
    guarded: tuple[str, ...]


#: class name -> guard contract.  The RPL201 checker flags any
#: ``self.<guarded> = ...`` (or augmented/compound equivalent) in these
#: classes that is not lexically inside a ``with self.<lock_attr>:``
#: scope or a method marked ``# reprolint: locked``.
THREAD_SHARED: dict[str, GuardSpec] = {
    "Cube": GuardSpec(
        "_lock",
        ("_leaf_cells", "_stored_derived", "_version", "_rollup_index", "_frozen"),
    ),
    "RollupIndex": GuardSpec(
        "_lock",
        (
            "_id_of",
            "_addr_of",
            "_next_id",
            "_by_dim",
            "_memo",
            "_memo_count",
            "_values",
            "_bound",
            "_synced",
            "_ordered_ids",
            "_ordered_arr",
            "_mask_of",
            "_struct_shared",
        ),
    ),
    "ScenarioCache": GuardSpec("_lock", ("_entries",)),
    "SlowQueryLog": GuardSpec("_lock", ("_entries", "observed", "recorded")),
    "FaultRegistry": GuardSpec("_lock", ("_armed",)),
    "ChunkStore": GuardSpec(
        "_lock",
        ("_chunks", "_positions", "_next_position", "_fork_charges"),
    ),
    "MetricsRegistry": GuardSpec("_lock", ("_metrics", "_collectors")),
    "Counter": GuardSpec("_lock", ("value",)),
    "Gauge": GuardSpec("_lock", ("value",)),
    "Histogram": GuardSpec(
        "_lock",
        ("counts", "total", "count", "minimum", "maximum"),
    ),
    "CircuitBreaker": GuardSpec(
        "_lock",
        ("_state", "_consecutive_failures", "_opened_at", "_probe_in_flight", "trips"),
    ),
    "QueryService": GuardSpec("_lock", ("_closed",)),
    "ShardedQueryService": GuardSpec("_lock", ("_closed",)),
    "ShardSupervisor": GuardSpec("_lock", ("_closed",)),
    "TenantQuotas": GuardSpec("_lock", ("_inflight",)),
    "Warehouse": GuardSpec("_snapshot_lock", ("_snapshot_cache",)),
    "ScenarioCatalog": GuardSpec(
        "_lock",
        (
            "_scenarios",
            "_sizes",
            "_generation",
            "_checkpoint_lsn",
            "_gauged_tenants",
            "_base_digest_cache",
        ),
    ),
    "CatalogJournal": GuardSpec("_lock", ("_handle", "_next_lsn")),
}


#: ``Class.method`` public entry points where the RPL501 checker requires
#: every ``raise`` of a newly constructed exception to be a typed
#: :class:`~repro.errors.ReproError` subclass.
ENTRY_POINTS: frozenset[str] = frozenset(
    {
        "Warehouse.query",
        "Warehouse.analyze",
        "Warehouse.explain",
        "QueryService.submit",
        "QueryService.close",
        "ShardedQueryService.execute",
        "ShardedQueryService.close",
        "QueryTicket.result",
        "QueryTicket.exception",
        "ScenarioCatalog.create",
        "ScenarioCatalog.fork",
        "ScenarioCatalog.update",
        "ScenarioCatalog.merge",
        "ScenarioCatalog.rebase",
        "ScenarioCatalog.drop",
        "ScenarioCatalog.diff",
        "ScenarioCatalog.materialize",
        "ScenarioCatalog.gc",
    }
)


#: ``(module basename, function/method qualname)`` pairs that are I/O
#: boundaries: the RPL303 checker requires each one to hit (or pass on)
#: at least one registered failpoint, so fault-injection coverage cannot
#: silently rot as storage code is refactored.
IO_BOUNDARIES: frozenset[tuple[str, str]] = frozenset(
    {
        ("chunk_store", "ChunkStore.read"),
        ("chunk_store", "ChunkStore.write"),
        ("chunk_store", "ChunkStore.fork"),
        ("journal", "CatalogJournal.append"),
        ("catalog", "ScenarioCatalog._commit"),
        ("catalog", "ScenarioCatalog._recover"),
        ("io", "_save_warehouse"),
        ("io", "_build_warehouse"),
        ("durability", "atomic_write_text"),
        ("durability", "_stage_temp"),
        ("durability", "_commit_generation"),
    }
)
