"""The committed reprolint baseline: grandfathered findings.

The baseline is a JSON file of entries, each **requiring** a written
justification — reprolint refuses a baseline whose entries have none, so
"baseline it" can never silently become "ignore it".  Matching is by
``(rule, path-suffix, symbol)`` — deliberately line-number-free, so
findings survive edits above them.  Entries that match nothing produce
an RPL002 warning: stale grandfathering must be deleted, not hoarded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import LintFinding

__all__ = ["Baseline", "BaselineEntry"]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: LintFinding) -> bool:
        if self.rule != finding.rule or self.symbol != finding.symbol:
            return False
        # suffix matching keeps entries valid whether the run used
        # ``repro lint src`` or an absolute path
        return finding.path.endswith(self.path) or self.path.endswith(finding.path)


class Baseline:
    def __init__(self, entries: "list[BaselineEntry]", path: "str | None" = None) -> None:
        self.entries = entries
        self.path = path
        self._matched: set[BaselineEntry] = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        raw_entries = payload.get("entries", [])
        entries: list[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"baseline entry #{index} ({raw.get('rule')}, "
                    f"{raw.get('symbol')!r}) has no justification; every "
                    "grandfathered finding must say why"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw.get("symbol", "")),
                    justification=justification,
                )
            )
        return cls(entries, path=str(path))

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def suppresses(self, finding: LintFinding) -> bool:
        for entry in self.entries:
            if entry.matches(finding):
                self._matched.add(entry)
                return True
        return False

    def stale_entries(self) -> "list[BaselineEntry]":
        return [entry for entry in self.entries if entry not in self._matched]
