"""RPL1xx: the static lock-order checker.

Builds a lock-acquisition graph from lexical ``with self._lock:`` scopes:

* **nodes** are qualified lock names (``Cube._lock``);
* an **edge** ``A -> B`` means a scope holding ``A`` (lexically, or via a
  ``# reprolint: locked`` method) contains a call that acquires ``B`` —
  either a nested ``with`` on the class's own lock or a method call that
  resolves to a lock-acquiring method of exactly one other lock-owning
  class.

Rules:

* **RPL101** — an edge contradicts :data:`~repro.lint.lock_hierarchy.LOCK_ORDER`
  (the inner lock ranks *above* the held one).
* **RPL102** — the edge graph has a cycle (even among undeclared locks).
* **RPL103** (warning) — a lock attribute assigned in a class is not
  declared in the hierarchy.

Method-name resolution is deliberately conservative: names that collide
with builtin collection methods never create edges, and a name matching
acquiring methods of two different classes is skipped as ambiguous.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import LintFinding
from repro.lint.lock_hierarchy import LOCK_ORDER, lock_rank
from repro.lint.model import ProjectModel, SourceFile

__all__ = ["run"]

#: method names that collide with builtin container/stdlib methods —
#: never treated as calls into another class's lock-acquiring method
_AMBIENT_METHOD_NAMES = frozenset(
    {
        "add", "append", "appendleft", "clear", "copy", "count", "dec",
        "discard", "extend", "get", "inc", "index", "insert", "items",
        "keys", "move_to_end", "pop", "popitem", "remove", "reverse",
        "set", "setdefault", "snapshot", "sort", "update", "values",
    }
)

_LOCK_CTOR_NAMES = frozenset({"Lock", "RLock", "make_lock"})


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_lock_ctor(value: ast.expr) -> bool:
    """Does this expression construct a lock?  Covers direct calls
    (``threading.Lock()``, ``make_lock(...)``), dataclass fields with a
    lock ``default_factory`` (including ``lambda: make_lock(...)``)."""
    if isinstance(value, ast.Call):
        name = _call_name(value.func)
        if name in _LOCK_CTOR_NAMES:
            return True
        if name == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory" and keyword.value is not None:
                    factory = keyword.value
                    if isinstance(factory, ast.Lambda):
                        return _is_lock_ctor(factory.body)
                    return _call_name(factory) in _LOCK_CTOR_NAMES
    return False


@dataclass
class _ClassInfo:
    name: str
    node: ast.ClassDef
    source: SourceFile
    #: lock attr -> qualified name (``Cube._lock``)
    lock_attrs: dict[str, str]
    #: method name -> FunctionDef
    methods: dict[str, "ast.FunctionDef | ast.AsyncFunctionDef"]
    #: method name -> set of qualified lock names it (transitively) acquires
    acquires: "dict[str, set[str]]"
    #: (attr, lineno, col) for locks assigned but not declared
    undeclared: "list[tuple[str, int, int]]"


@dataclass(frozen=True)
class _Edge:
    outer: str
    inner: str
    path: str
    line: int
    column: int
    symbol: str


def _declared_lock_attrs(class_name: str) -> dict[str, str]:
    attrs: dict[str, str] = {}
    for qualified in LOCK_ORDER:
        owner, _, attr = qualified.partition(".")
        if owner == class_name:
            attrs[attr] = qualified
    return attrs


def _self_attr(node: ast.expr) -> "str | None":
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_class(node: ast.ClassDef, source: SourceFile) -> _ClassInfo:
    lock_attrs = _declared_lock_attrs(node.name)
    undeclared: list[tuple[str, int, int]] = []
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[statement.name] = statement
        # dataclass-style class-level lock field
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            if isinstance(statement.target, ast.Name) and _is_lock_ctor(statement.value):
                attr = statement.target.id
                if attr not in lock_attrs:
                    undeclared.append((attr, statement.lineno, statement.col_offset))
                    lock_attrs[attr] = f"{node.name}.{attr}"
    # instance-attribute locks assigned in any method (usually __init__)
    for method in methods.values():
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign) and _is_lock_ctor(sub.value):
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is not None and attr not in lock_attrs:
                        undeclared.append((attr, sub.lineno, sub.col_offset))
                        lock_attrs[attr] = f"{node.name}.{attr}"
    return _ClassInfo(
        name=node.name,
        node=node,
        source=source,
        lock_attrs=lock_attrs,
        methods=methods,
        acquires={},
        undeclared=undeclared,
    )


def _direct_acquisitions(info: _ClassInfo) -> None:
    """Seed ``info.acquires`` with lexical with-scopes and locked pragmas."""
    for name, method in info.methods.items():
        acquired: set[str] = set()
        if info.source.is_locked_def(method) and info.lock_attrs:
            # callers hold the class lock; any lock attr counts
            acquired.update(info.lock_attrs.values())
        for sub in ast.walk(method):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in info.lock_attrs:
                        acquired.add(info.lock_attrs[attr])
        info.acquires[name] = acquired


def _propagate_self_calls(info: _ClassInfo) -> None:
    """Fixpoint: a method that calls ``self.m()`` acquires whatever m does."""
    changed = True
    while changed:
        changed = False
        for name, method in info.methods.items():
            acquired = info.acquires[name]
            for sub in ast.walk(method):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    callee = _self_attr(sub.func)
                    if callee is not None and callee in info.acquires:
                        extra = info.acquires[callee] - acquired
                        if extra:
                            acquired.update(extra)
                            changed = True


class _EdgeCollector(ast.NodeVisitor):
    """Walks one method tracking the lexically held lock stack."""

    def __init__(
        self,
        info: _ClassInfo,
        method_name: str,
        resolver: "dict[str, set[str] | None]",
    ) -> None:
        self.info = info
        self.method_name = method_name
        self.resolver = resolver
        self.held: list[str] = []
        self.edges: list[_Edge] = []

    def _record(self, inner_locks: "set[str]", node: ast.AST) -> None:
        if not self.held:
            return
        outer = self.held[-1]
        for inner in sorted(inner_locks):
            if inner == outer:
                continue  # reentrant same-lock
            self.edges.append(
                _Edge(
                    outer=outer,
                    inner=inner,
                    path=self.info.source.path,
                    line=getattr(node, "lineno", 0),
                    column=getattr(node, "col_offset", 0),
                    symbol=f"{self.info.name}.{self.method_name}",
                )
            )

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        pushed = 0
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.info.lock_attrs:
                qualified = self.info.lock_attrs[attr]
                self._record({qualified}, item.context_expr)
                self.held.append(qualified)
                pushed += 1
            else:
                self.visit(item.context_expr)
        for statement in node.body:
            self.visit(statement)
        for _ in range(pushed):
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self.held and isinstance(node.func, ast.Attribute):
            name = node.func.attr
            if _self_attr(node.func) is not None:
                # self.m(): same-class call; its transitive acquisitions
                # are edges from the held lock
                acquired = self.info.acquires.get(name)
                if acquired:
                    self._record(acquired, node)
            elif name not in _AMBIENT_METHOD_NAMES:
                resolved = self.resolver.get(name)
                if resolved:  # None marks ambiguous names; skip them
                    self._record(resolved, node)
        self.generic_visit(node)


def _find_cycles(edges: "list[_Edge]") -> "list[list[str]]":
    graph: dict[str, set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.outer, set()).add(edge.inner)
        graph.setdefault(edge.inner, set())
    cycles: list[list[str]] = []
    seen_cycles: set[frozenset[str]] = set()
    color: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
    stack: list[str] = []

    def visit(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for successor in sorted(graph[node]):
            state = color.get(successor, 0)
            if state == 0:
                visit(successor)
            elif state == 1:
                cycle = stack[stack.index(successor):] + [successor]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
        stack.pop()
        color[node] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            visit(node)
    return cycles


def run(model: ProjectModel) -> "list[LintFinding]":
    findings: list[LintFinding] = []
    classes: list[_ClassInfo] = []
    for source in model.files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                classes.append(_collect_class(node, source))

    for info in classes:
        _direct_acquisitions(info)
        _propagate_self_calls(info)
        for attr, lineno, col in info.undeclared:
            findings.append(
                LintFinding.make(
                    "RPL103",
                    f"lock {info.name}.{attr} is not declared in "
                    "repro.lint.lock_hierarchy.LOCK_ORDER",
                    path=info.source.path,
                    line=lineno,
                    column=col,
                    symbol=f"{info.name}.{attr}",
                )
            )

    # method name -> the locks it acquires, across all classes that lock;
    # None marks a name claimed by more than one class (ambiguous).
    resolver: dict[str, set[str] | None] = {}
    for info in classes:
        for method_name, acquired in info.acquires.items():
            if not acquired:
                continue
            if method_name in resolver:
                resolver[method_name] = None
            else:
                resolver[method_name] = set(acquired)

    edges: list[_Edge] = []
    for info in classes:
        for method_name, method in info.methods.items():
            collector = _EdgeCollector(info, method_name, resolver)
            if info.source.is_locked_def(method) and info.lock_attrs:
                # callers hold this class's lock for the whole body
                collector.held.extend(sorted(set(info.lock_attrs.values())))
            for statement in method.body:
                collector.visit(statement)
            edges.extend(collector.edges)

    deduped: dict[tuple[str, str, str], _Edge] = {}
    for edge in edges:
        deduped.setdefault((edge.outer, edge.inner, edge.symbol), edge)
    edges = list(deduped.values())

    for edge in edges:
        outer_rank = lock_rank(edge.outer)
        inner_rank = lock_rank(edge.inner)
        if outer_rank is not None and inner_rank is not None and inner_rank < outer_rank:
            findings.append(
                LintFinding.make(
                    "RPL101",
                    f"acquires {edge.inner} (rank {inner_rank}) while holding "
                    f"{edge.outer} (rank {outer_rank}); LOCK_ORDER requires "
                    "the opposite nesting",
                    path=edge.path,
                    line=edge.line,
                    column=edge.column,
                    symbol=edge.symbol,
                )
            )

    for cycle in _find_cycles(edges):
        first = cycle[0]
        witness = next(
            e for e in edges if e.outer in cycle and e.inner in cycle
        )
        findings.append(
            LintFinding.make(
                "RPL102",
                "lock-acquisition cycle: " + " -> ".join(cycle),
                path=witness.path,
                line=witness.line,
                column=witness.column,
                symbol=first,
            )
        )
    return findings
