"""Runtime lock-order witness (lockdep), enabled via ``REPRO_LOCKDEP=1``.

The static checker sees lexical ``with self._lock:`` scopes; it cannot
see orders that only materialise at runtime (callbacks, reentrancy
through virtual dispatch).  This witness closes that gap: every lock in
the engine is created through :func:`make_lock`, which returns a plain
:mod:`threading` lock in production and a :class:`WitnessLock` when the
``REPRO_LOCKDEP`` environment variable is ``1`` at construction time.

A witness lock validates **before** acquiring the real lock:

* the acquisition must not contradict :data:`~repro.lint.lock_hierarchy.LOCK_ORDER`
  (holding a lower-ranked lock while taking a higher-ranked one), and
* the edge ``held -> acquiring`` must not already exist in the opposite
  direction in the process-wide edge graph.

Because validation happens before blocking on the inner lock, the
second thread of an ABBA inversion raises
:class:`~repro.errors.LockOrderError` instead of deadlocking — the test
fails fast with both lock names in the message.

Same-*instance* re-acquisition is allowed for reentrant locks and fails
fast for non-reentrant ones (a guaranteed self-deadlock).  Edges between
two *instances* of the same lock name are ignored: per-instance ordering
within one rank (e.g. two ``Counter._lock``) is the caller's business.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Protocol

from repro.errors import LockOrderError
from repro.lint.lock_hierarchy import lock_rank

__all__ = [
    "LockProtocol",
    "WITNESS",
    "WitnessLock",
    "lockdep_enabled",
    "make_lock",
]


class LockProtocol(Protocol):
    """Structural type covering threading.Lock/RLock and WitnessLock."""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> Any: ...


def lockdep_enabled() -> bool:
    return os.environ.get("REPRO_LOCKDEP", "") == "1"


class _Witness:
    """Process-wide acquisition recorder shared by all witness locks."""

    def __init__(self) -> None:
        # the witness's own bookkeeping lock sits outside the hierarchy
        # it polices: it is only ever the innermost acquisition and is
        # never exposed to engine code
        self._graph_lock = threading.Lock()  # reprolint: ignore[RPL103]
        #: directed edges outer-name -> set of inner-names actually seen
        self._edges: dict[str, set[str]] = {}
        self._local = threading.local()
        #: count of inversions raised (monotonic; for test assertions)
        self.inversions = 0

    def _held(self) -> "list[tuple[str, int, bool]]":
        """This thread's acquisition stack: (name, instance id, reentrant)."""
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def on_acquire(self, name: str, instance_id: int, reentrant: bool) -> None:
        """Validate and record; raises before the caller blocks on the
        real lock, so an inversion can never actually deadlock."""
        held = self._held()
        for held_name, held_id, held_reentrant in held:
            if held_id == instance_id:
                if reentrant:
                    # reentrant re-acquire of the same instance: no edge
                    held.append((name, instance_id, reentrant))
                    return
                with self._graph_lock:
                    self.inversions += 1
                raise LockOrderError(
                    f"self-deadlock: non-reentrant lock {name!r} "
                    "re-acquired by the thread that holds it",
                    holding=name,
                    acquiring=name,
                )
        if held:
            outer_name = held[-1][0]
            if outer_name != name:  # same-name sibling instances: no order
                self._check_edge(outer_name, name)
        held.append((name, instance_id, reentrant))

    def _check_edge(self, outer: str, inner: str) -> None:
        outer_rank = lock_rank(outer)
        inner_rank = lock_rank(inner)
        if (
            outer_rank is not None
            and inner_rank is not None
            and inner_rank < outer_rank
        ):
            with self._graph_lock:
                self.inversions += 1
            raise LockOrderError(
                f"lock hierarchy violation: acquiring {inner!r} "
                f"(rank {inner_rank}) while holding {outer!r} "
                f"(rank {outer_rank}); see repro.lint.lock_hierarchy",
                holding=outer,
                acquiring=inner,
            )
        with self._graph_lock:
            if outer in self._edges.get(inner, ()):
                self.inversions += 1
                raise LockOrderError(
                    f"lock order inversion: acquiring {inner!r} while "
                    f"holding {outer!r}, but the opposite order "
                    f"{inner!r} -> {outer!r} was already witnessed",
                    holding=outer,
                    acquiring=inner,
                )
            self._edges.setdefault(outer, set()).add(inner)

    def on_release(self, instance_id: int) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][1] == instance_id:
                del held[index]
                return

    def edges(self) -> dict[str, set[str]]:
        with self._graph_lock:
            return {outer: set(inner) for outer, inner in self._edges.items()}

    def reset(self) -> None:
        """Forget all witnessed edges (tests isolate scenarios with this);
        per-thread held stacks are untouched."""
        with self._graph_lock:
            self._edges.clear()
            self.inversions = 0


#: The process-wide witness all WitnessLocks report to.
WITNESS = _Witness()


class WitnessLock:
    """A named lock that reports every acquire/release to :data:`WITNESS`."""

    __slots__ = ("name", "reentrant", "_inner")

    def __init__(self, name: str, *, reentrant: bool = True) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner: Any = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        WITNESS.on_acquire(self.name, id(self), self.reentrant)
        acquired = bool(self._inner.acquire(blocking, timeout))
        if not acquired:
            WITNESS.on_release(id(self))
        return acquired

    def release(self) -> None:
        self._inner.release()
        WITNESS.on_release(id(self))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"WitnessLock({self.name!r}, {kind})"


def make_lock(name: str, *, reentrant: bool = True) -> LockProtocol:
    """Create the lock every engine class uses for its guarded state.

    ``name`` must be the qualified ``Class.attr`` name declared in
    :data:`~repro.lint.lock_hierarchy.LOCK_ORDER`.  Returns a plain
    :class:`threading.RLock`/:class:`threading.Lock` unless
    ``REPRO_LOCKDEP=1`` was set when the lock was constructed, in which
    case acquisitions are checked by the lockdep witness.
    """
    if lockdep_enabled():
        return WitnessLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()
