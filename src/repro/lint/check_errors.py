"""RPL501: only typed ReproError subclasses escape public entry points.

For each entry point in
:data:`~repro.lint.lock_hierarchy.ENTRY_POINTS`, every ``raise`` of a
*newly constructed* exception in its body must name a class in the
:class:`~repro.errors.ReproError` closure.  Re-raises (bare ``raise``,
``raise exc``) and lowercase factory helpers (``raise self._shed(...)``)
are out of scope — they propagate what was already vetted elsewhere.

The closure is computed two ways and unioned: at runtime by walking
``ReproError.__subclasses__`` (covers the real package), and statically
from class definitions in the linted files whose base-name chain reaches
a closure member (covers self-contained test fixtures).
"""

from __future__ import annotations

import ast

from repro.lint.findings import LintFinding
from repro.lint.lock_hierarchy import ENTRY_POINTS
from repro.lint.model import ProjectModel

__all__ = ["run"]


def _runtime_closure() -> set[str]:
    from repro.errors import ReproError

    names: set[str] = set()
    pending = [ReproError]
    while pending:
        cls = pending.pop()
        if cls.__name__ in names:
            continue
        names.add(cls.__name__)
        pending.extend(cls.__subclasses__())
    return names


def _static_closure(model: ProjectModel, closure: set[str]) -> None:
    """Grow ``closure`` with classes in the model deriving (by base-name
    chains) from any closure member."""
    bases: dict[str, set[str]] = {}
    for source in model.files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.add(base.attr)
                bases.setdefault(node.name, set()).update(names)
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name not in closure and base_names & closure:
                closure.add(name)
                changed = True


def _raised_class_name(node: ast.Raise) -> "str | None":
    """Name of a newly constructed exception class, else None."""
    exc = node.exc
    if exc is None or isinstance(exc, ast.Name):
        return None  # bare raise / re-raise of a variable
    if isinstance(exc, ast.Call):
        func = exc.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        # lowercase callees are factory helpers, not class constructions
        return name if name[:1].isupper() else None
    return None


def run(model: ProjectModel) -> "list[LintFinding]":
    closure = _runtime_closure()
    _static_closure(model, closure)

    findings: list[LintFinding] = []
    for source in model.files:
        for class_node in ast.walk(source.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                qualname = f"{class_node.name}.{method.name}"
                if qualname not in ENTRY_POINTS:
                    continue
                for sub in ast.walk(method):
                    if not isinstance(sub, ast.Raise):
                        continue
                    name = _raised_class_name(sub)
                    if name is not None and name not in closure:
                        findings.append(
                            LintFinding.make(
                                "RPL501",
                                f"{qualname} raises {name}, which is not a "
                                "typed ReproError subclass; callers of this "
                                "entry point catch ReproError",
                                path=source.path,
                                line=sub.lineno,
                                column=sub.col_offset,
                                symbol=qualname,
                            )
                        )
    return findings
