"""Source model for reprolint: parsed files plus suppression pragmas.

Two pragmas are recognised, both as trailing comments:

* ``# reprolint: ignore[RPL201,RPL402]`` — suppress the listed rules for
  findings anchored to that line;
* ``# reprolint: locked`` — on a ``def`` line: every caller of this
  method holds the class lock, so the body is treated as a lock scope
  (RPL201 exemption *and* lock-edge source) without a lexical ``with``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.findings import LintFinding

__all__ = ["ProjectModel", "SourceFile"]

_IGNORE_RE = re.compile(r"#\s*reprolint:\s*ignore\[([A-Z0-9, ]+)\]")
_LOCKED_RE = re.compile(r"#\s*reprolint:\s*locked\b")


@dataclass
class SourceFile:
    """One parsed source file with its pragma maps."""

    path: str
    text: str
    tree: ast.Module
    #: module basename without extension (``chunk_store`` for
    #: ``src/repro/storage/chunk_store.py``)
    module: str
    #: line number -> set of rule codes suppressed on that line
    ignores: dict[int, set[str]] = field(default_factory=dict)
    #: lines carrying ``# reprolint: locked``
    locked_lines: set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=str(path))
        ignores: dict[int, set[str]] = {}
        locked_lines: set[int] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _IGNORE_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                ignores.setdefault(lineno, set()).update(r for r in rules if r)
            if _LOCKED_RE.search(line):
                locked_lines.add(lineno)
        return cls(
            path=str(path),
            text=text,
            tree=tree,
            module=path.stem,
            ignores=ignores,
            locked_lines=locked_lines,
        )

    def is_suppressed(self, finding: LintFinding) -> bool:
        rules = self.ignores.get(finding.line)
        return rules is not None and finding.rule in rules

    def is_locked_def(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", None)
        return lineno is not None and lineno in self.locked_lines


class ProjectModel:
    """All files one lint run analyses, parsed once and shared by every
    checker."""

    def __init__(self, files: "list[SourceFile]", parse_failures: "list[LintFinding]") -> None:
        self.files = files
        self.parse_failures = parse_failures

    @classmethod
    def load(cls, paths: Iterable[Path]) -> "ProjectModel":
        files: list[SourceFile] = []
        failures: list[LintFinding] = []
        for path in sorted(set(paths)):
            try:
                text = path.read_text(encoding="utf-8")
                files.append(SourceFile.parse(path, text))
            except (OSError, SyntaxError, ValueError) as exc:
                failures.append(
                    LintFinding.make(
                        "RPL001",
                        f"cannot analyze {path}: {exc}",
                        path=str(path),
                        line=getattr(exc, "lineno", 0) or 0,
                        symbol=path.stem,
                    )
                )
        return cls(files, failures)

    @staticmethod
    def collect_paths(roots: Iterable[Path]) -> "list[Path]":
        """Expand files/directories into the .py files to lint."""
        paths: list[Path] = []
        for root in roots:
            if root.is_dir():
                paths.extend(
                    p for p in sorted(root.rglob("*.py")) if p.is_file()
                )
            elif root.suffix == ".py":
                paths.append(root)
        return paths
