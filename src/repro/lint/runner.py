"""The reprolint driver: load sources, run every checker, filter.

Suppression order: per-line ``# reprolint: ignore[...]`` pragmas first,
then the committed baseline (which records how many findings it
swallowed and reports its own stale entries as RPL002).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.lint import (
    check_errors,
    check_failpoints,
    check_locks,
    check_obs,
    check_shared,
)
from repro.lint.baseline import Baseline
from repro.lint.findings import LintFinding, LintReport
from repro.lint.model import ProjectModel

__all__ = ["run_lint"]

_CHECKERS = (
    check_locks.run,
    check_shared.run,
    check_failpoints.run,
    check_obs.run,
    check_errors.run,
)


def run_lint(
    roots: Iterable[Path],
    baseline: "Baseline | None" = None,
) -> LintReport:
    paths = ProjectModel.collect_paths(Path(root) for root in roots)
    model = ProjectModel.load(paths)
    baseline = baseline if baseline is not None else Baseline.empty()

    raw: list[LintFinding] = list(model.parse_failures)
    for checker in _CHECKERS:
        raw.extend(checker(model))

    by_path = {source.path: source for source in model.files}
    report = LintReport(files_checked=len(model.files))
    baselined = 0
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            continue
        if baseline.suppresses(finding):
            baselined += 1
            continue
        report.add(finding)
    report.baselined = baselined

    for entry in baseline.stale_entries():
        report.add(
            LintFinding.make(
                "RPL002",
                f"stale baseline entry: {entry.rule} {entry.symbol!r} in "
                f"{entry.path} matches no current finding; delete it",
                path=baseline.path or "<baseline>",
                symbol=entry.symbol,
            )
        )
    return report
