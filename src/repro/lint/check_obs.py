"""RPL4xx: observability hygiene.

* **RPL401** — metric names passed to ``.counter()`` / ``.gauge()`` /
  ``.histogram()`` must be snake_case; counters must end ``_total`` and
  histograms ``_ms`` (the registry convention, see
  :mod:`repro.obs.metrics`).
* **RPL402** — span leaks: a ``TRACER.start(...)`` result must be ended
  via ``TRACER.end(span)`` inside a ``finally`` of the same function
  (or used as a ``with`` context manager); a bare ``trace_span(...)``
  call that is not a ``with`` item opens nothing or leaks its span.

The tracing core itself (``obs/trace.py``) is exempt — it *implements*
the start/end protocol.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import LintFinding
from repro.lint.model import ProjectModel, SourceFile

__all__ = ["run"]

_SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*[a-z0-9]$")
_EXEMPT_MODULES = frozenset({"trace"})


def _metric_findings(source: SourceFile) -> "list[LintFinding]":
    findings: list[LintFinding] = []
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("counter", "gauge", "histogram")
            and node.args
        ):
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        name = first.value
        kind = node.func.attr
        problem = ""
        if not _SNAKE_RE.match(name) or "__" in name:
            problem = "is not snake_case"
        elif kind == "counter" and not name.endswith("_total"):
            problem = "is a counter but does not end with '_total'"
        elif kind == "histogram" and not name.endswith("_ms"):
            problem = "is a histogram but does not end with '_ms'"
        if problem:
            findings.append(
                LintFinding.make(
                    "RPL401",
                    f"metric name {name!r} {problem}",
                    path=source.path,
                    line=node.lineno,
                    column=node.col_offset,
                    symbol=name,
                )
            )
    return findings


def _is_tracer_start(node: ast.expr) -> bool:
    """``TRACER.start(...)`` (or ``<x>.start(...)`` on a name that *is*
    ``TRACER``); conditional expressions are unwrapped by the caller."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "start"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "TRACER"
    )


def _walk_own(node: ast.AST) -> "Iterator[ast.AST]":
    """Walk a function body without descending into nested defs, which
    get their own pass (prevents double-reporting)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _walk_own(child)


def _span_findings(source: SourceFile) -> "list[LintFinding]":
    findings: list[LintFinding] = []
    for func_node in ast.walk(source.tree):
        if not isinstance(func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # names TRACER.end(...) is called on inside any finally block
        ended: set[str] = set()
        with_items: set[int] = set()
        for sub in _walk_own(func_node):
            if isinstance(sub, ast.Try):
                for statement in sub.finalbody:
                    for inner in ast.walk(statement):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Attribute)
                            and inner.func.attr == "end"
                            and inner.args
                            and isinstance(inner.args[0], ast.Name)
                        ):
                            ended.add(inner.args[0].id)
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    with_items.add(id(item.context_expr))

        for sub in _walk_own(func_node):
            # x = TRACER.start(...) / x = TRACER.start(...) if ... else None
            if isinstance(sub, ast.Assign):
                value = sub.value
                if isinstance(value, ast.IfExp):
                    value = value.body
                if _is_tracer_start(value):
                    target = sub.targets[0]
                    name = target.id if isinstance(target, ast.Name) else ""
                    if name not in ended:
                        findings.append(
                            LintFinding.make(
                                "RPL402",
                                f"span from TRACER.start is not ended in a "
                                f"'finally' of {func_node.name} "
                                "(exceptions would leak it open)",
                                path=source.path,
                                line=sub.lineno,
                                column=sub.col_offset,
                                symbol=func_node.name,
                            )
                        )
            # bare trace_span(...) not used as a with-item
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "trace_span"
                and id(sub) not in with_items
            ):
                findings.append(
                    LintFinding.make(
                        "RPL402",
                        "trace_span(...) must be a 'with' context manager; "
                        "a bare call leaks the span when tracing is on",
                        path=source.path,
                        line=sub.lineno,
                        column=sub.col_offset,
                        symbol=func_node.name,
                    )
                )
    return findings


def run(model: ProjectModel) -> "list[LintFinding]":
    findings: list[LintFinding] = []
    for source in model.files:
        findings.extend(_metric_findings(source))
        if source.module not in _EXEMPT_MODULES:
            findings.extend(_span_findings(source))
    return findings
