"""The ``repro lint`` subcommand implementation."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline
from repro.lint.runner import run_lint

__all__ = ["lint_main"]


def lint_main(
    paths: Sequence[str],
    *,
    baseline_path: "str | None" = None,
    json_output: bool = False,
    strict: bool = False,
) -> int:
    """Run reprolint over ``paths``; returns the 0/1/2 exit code."""
    roots = [Path(p) for p in (paths or ["src"])]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if baseline_path is not None:
        candidate = Path(baseline_path)
        if not candidate.exists():
            print(
                f"repro lint: baseline {baseline_path!r} not found",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = Baseline.load(candidate)
        except (ValueError, KeyError) as exc:
            print(f"repro lint: bad baseline: {exc}", file=sys.stderr)
            return 2
    else:
        baseline = Baseline.empty()

    report = run_lint(roots, baseline)
    print(report.to_json() if json_output else report.to_text())
    return report.exit_code(strict)
