"""Warehouse persistence: save/load a warehouse as a JSON directory.

Layout::

    <path>/
      MANIFEST.json   generation number + SHA-256/byte-length per data file
      schema.json     dimensions, varying registry, rules, named sets, names
      cells.json      leaf cells and stored (materialised) aggregates
      *.prev          the previous good generation (kept until the next save)
      *.corrupt       quarantined files that failed integrity checks

Everything is plain JSON with deterministic ordering, so a saved warehouse
diffs cleanly under version control.  The round trip is lossless for the
data model this library exposes: hierarchies, ordered/measures flags,
varying assignments (including invalid moments), formula rules with
scopes, named sets, and both leaf and stored derived cells.

Saves are crash-safe (see :mod:`repro.durability`): every file is staged,
fsynced, and renamed, with the manifest rename as the commit point, and
the previous generation retained as ``*.prev``.  :func:`load_warehouse`
verifies checksums, quarantines torn or corrupt files as ``*.corrupt``,
restores the last-good generation when the newest one is damaged, and
raises :class:`~repro.errors.WarehouseCorruptionError` naming exactly what
was lost when no generation survives.  Stores written before manifests
existed (plain ``schema.json`` + ``cells.json``) still load.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.durability import RecoveredStore, commit_generation, recover_store
from repro.errors import WarehouseFormatError
from repro.faults import inject_io_fault, register_failpoint
from repro.obs.trace import trace_span
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension, Member
from repro.olap.formula import format_expr
from repro.olap.rules import RuleEngine
from repro.olap.schema import CubeSchema
from repro.warehouse import Warehouse

__all__ = ["save_warehouse", "load_warehouse", "load_warehouse_recovered"]

FORMAT_VERSION = 1

SCHEMA_FILE = "schema.json"
CELLS_FILE = "cells.json"

FP_SAVE_SCHEMA = register_failpoint("io.save.schema")
FP_SAVE_CELLS = register_failpoint("io.save.cells")
FP_SAVE_COMMIT = register_failpoint("io.save.commit")
FP_LOAD_SCHEMA = register_failpoint("io.load.schema")
FP_LOAD_CELLS = register_failpoint("io.load.cells")


def _member_tree(member: Member) -> dict:
    return {
        "name": member.name,
        "children": [_member_tree(child) for child in member.children],
    }


def _dimension_payload(dimension: Dimension) -> dict:
    return {
        "name": dimension.name,
        "ordered": dimension.ordered,
        "is_measures": dimension.is_measures,
        "members": [_member_tree(child) for child in dimension.root.children],
    }


def _rules_payload(rules: RuleEngine | None) -> list[dict]:
    if rules is None:
        return []
    return [
        {
            "target": rule.target,
            "dimension": rule.dimension,
            "formula": format_expr(rule.expression),
            "scope": dict(sorted(rule.scope.items())),
        }
        for rule in rules.rules
    ]


def save_warehouse(warehouse: Warehouse, path: "str | Path") -> Path:
    """Write the warehouse to ``path`` (created if needed); returns it.

    The save is atomic at generation granularity: a crash at any point
    leaves either the previous store or the new one loadable, never a
    half-written mix (see :mod:`repro.durability`).
    """
    with trace_span("io.save") as span:
        root = _save_warehouse(warehouse, Path(path))
        if span is not None:
            span.set(path=str(root))
    return root


def _save_warehouse(warehouse: Warehouse, root: Path) -> Path:
    inject_io_fault(FP_SAVE_SCHEMA)
    schema = warehouse.schema
    payload = {
        "format_version": FORMAT_VERSION,
        "name": warehouse.name,
        "aliases": sorted(warehouse.aliases),
        "dimensions": [_dimension_payload(d) for d in schema.dimensions],
        "varying": {
            name: {
                "parameter": varying.parameter.name,
                "assignments": varying.assignments(),
            }
            for name, varying in sorted(schema.varying.items())
        },
        "rules": _rules_payload(warehouse.cube.rules),
        "named_sets": {
            named.name: list(named.members)
            for named in warehouse.named_sets()
        },
    }
    schema_text = json.dumps(payload, indent=2, sort_keys=True)

    inject_io_fault(FP_SAVE_CELLS)
    cells = {
        "leaf": sorted(
            [list(addr) + [value] for addr, value in warehouse.cube.leaf_cells()]
        ),
        "derived": sorted(
            [
                list(addr) + [value]
                for addr, value in warehouse.cube.stored_derived_cells()
            ]
        ),
    }
    cells_text = json.dumps(cells, indent=0)

    inject_io_fault(FP_SAVE_COMMIT)
    commit_generation(
        root,
        {SCHEMA_FILE: schema_text, CELLS_FILE: cells_text},
        format_version=FORMAT_VERSION,
    )
    return root


def _load_members(dimension: Dimension, nodes: list[dict], parent: str | None) -> None:
    for node in nodes:
        dimension.add_member(node["name"], parent)
        _load_members(dimension, node["children"], node["name"])


def _read_json(path: Path, *, what: str) -> dict:
    """Read one store file as JSON, mapping every failure to a typed
    :class:`~repro.errors.WarehouseFormatError`."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise WarehouseFormatError(f"{what} missing", path=str(path)) from exc
    except OSError as exc:
        raise WarehouseFormatError(
            f"{what} unreadable: {exc}", path=str(path)
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WarehouseFormatError(
            f"{what} is not valid JSON (truncated or garbled): {exc}",
            path=str(path),
        ) from exc
    if not isinstance(payload, dict):
        raise WarehouseFormatError(
            f"{what} must be a JSON object, found {type(payload).__name__}",
            path=str(path),
        )
    return payload


def _check_version(payload: dict, path: Path) -> None:
    version = payload.get("format_version")
    if version == FORMAT_VERSION:
        return
    if isinstance(version, int) and version > FORMAT_VERSION:
        raise WarehouseFormatError(
            f"warehouse format version {version} is newer than this build "
            f"reads ({FORMAT_VERSION}); upgrade the library to load it",
            path=str(path),
            format_version=version,
        )
    raise WarehouseFormatError(
        f"unsupported warehouse format version {version!r} "
        f"(this build reads {FORMAT_VERSION})",
        path=str(path),
        format_version=version,
    )


def _build_warehouse(schema_path: Path, cells_path: Path) -> Warehouse:
    inject_io_fault(FP_LOAD_SCHEMA)
    payload = _read_json(schema_path, what="schema.json")
    _check_version(payload, schema_path)

    try:
        dimensions = []
        for spec in payload["dimensions"]:
            dimension = Dimension(
                spec["name"], ordered=spec["ordered"], is_measures=spec["is_measures"]
            )
            _load_members(dimension, spec["members"], None)
            dimensions.append(dimension)
        schema = CubeSchema(dimensions)

        for name, varying_spec in payload["varying"].items():
            varying = schema.make_varying(name, varying_spec["parameter"])
            varying.load_assignments(varying_spec["assignments"])

        rules = RuleEngine(schema)
        for rule_spec in payload["rules"]:
            rules.define(
                rule_spec["target"],
                rule_spec["formula"],
                dimension=rule_spec["dimension"],
                scope=rule_spec["scope"],
            )
    except (KeyError, TypeError) as exc:
        raise WarehouseFormatError(
            f"schema.json is structurally invalid: missing or mistyped "
            f"field ({exc})",
            path=str(schema_path),
            format_version=payload.get("format_version"),
        ) from exc

    cube = Cube(schema, rules)
    inject_io_fault(FP_LOAD_CELLS)
    cells = _read_json(cells_path, what="cells.json")
    try:
        for row in cells["leaf"]:
            cube.set_value(tuple(row[:-1]), row[-1])
        for row in cells["derived"]:
            cube.set_value(tuple(row[:-1]), row[-1])
    except (KeyError, TypeError) as exc:
        raise WarehouseFormatError(
            f"cells.json is structurally invalid: {exc}",
            path=str(cells_path),
            format_version=payload.get("format_version"),
        ) from exc

    try:
        warehouse = Warehouse(
            schema, cube, name=payload["name"], aliases=payload["aliases"]
        )
        for name, members in payload["named_sets"].items():
            warehouse.define_named_set(name, members)
    except (KeyError, TypeError) as exc:
        raise WarehouseFormatError(
            f"schema.json is structurally invalid: missing or mistyped "
            f"field ({exc})",
            path=str(schema_path),
            format_version=payload.get("format_version"),
        ) from exc
    return warehouse


def load_warehouse_recovered(
    path: "str | Path",
) -> tuple[Warehouse, RecoveredStore]:
    """Like :func:`load_warehouse`, but also return the
    :class:`~repro.durability.RecoveredStore` describing any integrity
    repairs (quarantines, generation restores) performed on the way in."""
    root = Path(path)
    with trace_span("io.load", path=str(root)):
        recovered = recover_store(
            root, expected_files=(SCHEMA_FILE, CELLS_FILE)
        )
        for name in (SCHEMA_FILE, CELLS_FILE):
            if name not in recovered.files:
                raise WarehouseFormatError(
                    f"store manifest does not list {name}",
                    path=str(root / "MANIFEST.json"),
                )
        warehouse = _build_warehouse(
            recovered.files[SCHEMA_FILE], recovered.files[CELLS_FILE]
        )
    return warehouse, recovered


def load_warehouse(path: "str | Path") -> Warehouse:
    """Rebuild a warehouse saved by :func:`save_warehouse`.

    Integrity policy: checksums are verified against ``MANIFEST.json``;
    damaged files are quarantined as ``*.corrupt`` and the previous
    generation is restored when it verifies in full.  A store beyond
    repair raises :class:`~repro.errors.WarehouseCorruptionError`;
    a file that is missing/garbled in a pre-manifest (legacy) store
    raises :class:`~repro.errors.WarehouseFormatError`.
    """
    warehouse, _ = load_warehouse_recovered(path)
    return warehouse
