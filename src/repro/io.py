"""Warehouse persistence: save/load a warehouse as a JSON directory.

Layout::

    <path>/
      schema.json   dimensions, varying registry, rules, named sets, names
      cells.json    leaf cells and stored (materialised) aggregates

Everything is plain JSON with deterministic ordering, so a saved warehouse
diffs cleanly under version control.  The round trip is lossless for the
data model this library exposes: hierarchies, ordered/measures flags,
varying assignments (including invalid moments), formula rules with
scopes, named sets, and both leaf and stored derived cells.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import SchemaError
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension, Member
from repro.olap.formula import format_expr
from repro.olap.rules import RuleEngine
from repro.olap.schema import CubeSchema
from repro.warehouse import Warehouse

__all__ = ["save_warehouse", "load_warehouse"]

FORMAT_VERSION = 1


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via write-temp → fsync → rename.

    A crash at any point leaves either the old file or the new file —
    never a truncated hybrid.  The temp file lives in the same directory
    so the final rename stays within one filesystem (and is atomic).
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # Persist the rename itself (directory entry) where the OS allows it.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _member_tree(member: Member) -> dict:
    return {
        "name": member.name,
        "children": [_member_tree(child) for child in member.children],
    }


def _dimension_payload(dimension: Dimension) -> dict:
    return {
        "name": dimension.name,
        "ordered": dimension.ordered,
        "is_measures": dimension.is_measures,
        "members": [_member_tree(child) for child in dimension.root.children],
    }


def _rules_payload(rules: RuleEngine | None) -> list[dict]:
    if rules is None:
        return []
    return [
        {
            "target": rule.target,
            "dimension": rule.dimension,
            "formula": format_expr(rule.expression),
            "scope": dict(sorted(rule.scope.items())),
        }
        for rule in rules.rules
    ]


def save_warehouse(warehouse: Warehouse, path: "str | Path") -> Path:
    """Write the warehouse to ``path`` (created if needed); returns it."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    schema = warehouse.schema
    payload = {
        "format_version": FORMAT_VERSION,
        "name": warehouse.name,
        "aliases": sorted(warehouse.aliases),
        "dimensions": [_dimension_payload(d) for d in schema.dimensions],
        "varying": {
            name: {
                "parameter": varying.parameter.name,
                "assignments": varying.assignments(),
            }
            for name, varying in sorted(schema.varying.items())
        },
        "rules": _rules_payload(warehouse.cube.rules),
        "named_sets": {
            named.name: list(named.members)
            for named in warehouse.named_sets()
        },
    }
    _atomic_write_text(
        root / "schema.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    cells = {
        "leaf": sorted(
            [list(addr) + [value] for addr, value in warehouse.cube.leaf_cells()]
        ),
        "derived": sorted(
            [
                list(addr) + [value]
                for addr, value in warehouse.cube.stored_derived_cells()
            ]
        ),
    }
    _atomic_write_text(root / "cells.json", json.dumps(cells, indent=0))
    return root


def _load_members(dimension: Dimension, nodes: list[dict], parent: str | None) -> None:
    for node in nodes:
        dimension.add_member(node["name"], parent)
        _load_members(dimension, node["children"], node["name"])


def load_warehouse(path: "str | Path") -> Warehouse:
    """Rebuild a warehouse saved by :func:`save_warehouse`."""
    root = Path(path)
    payload = json.loads((root / "schema.json").read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported warehouse format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )

    dimensions = []
    for spec in payload["dimensions"]:
        dimension = Dimension(
            spec["name"], ordered=spec["ordered"], is_measures=spec["is_measures"]
        )
        _load_members(dimension, spec["members"], None)
        dimensions.append(dimension)
    schema = CubeSchema(dimensions)

    for name, varying_spec in payload["varying"].items():
        varying = schema.make_varying(name, varying_spec["parameter"])
        varying.load_assignments(varying_spec["assignments"])

    rules = RuleEngine(schema)
    for rule_spec in payload["rules"]:
        rules.define(
            rule_spec["target"],
            rule_spec["formula"],
            dimension=rule_spec["dimension"],
            scope=rule_spec["scope"],
        )

    cube = Cube(schema, rules)
    cells = json.loads((root / "cells.json").read_text())
    for row in cells["leaf"]:
        cube.set_value(tuple(row[:-1]), row[-1])
    for row in cells["derived"]:
        cube.set_value(tuple(row[:-1]), row[-1])

    warehouse = Warehouse(
        schema, cube, name=payload["name"], aliases=payload["aliases"]
    )
    for name, members in payload["named_sets"].items():
        warehouse.define_named_set(name, members)
    return warehouse
