"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Subclasses partition the
failure domains: schema/metadata problems, query language problems, rule
evaluation problems, and storage-engine problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A cube schema or dimension hierarchy is malformed or misused."""


class MemberNotFoundError(SchemaError):
    """A dimension member (or member instance) was looked up but not found."""

    def __init__(self, dimension: str, member: str) -> None:
        super().__init__(f"member {member!r} not found in dimension {dimension!r}")
        self.dimension = dimension
        self.member = member


class DuplicateMemberError(SchemaError):
    """An attempt was made to add a member name that already exists."""


class InvalidChangeError(ReproError):
    """A structural change violates Definition 3.1 (legal changes)."""


class ValidityError(ReproError):
    """A validity-set operation is inconsistent (e.g. overlapping instances)."""


class RuleError(ReproError):
    """A derived-cell rule is malformed or fails during evaluation."""


class FormulaSyntaxError(RuleError):
    """A rule formula could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class MdxError(ReproError):
    """Base class for extended-MDX language errors."""


class MdxSyntaxError(MdxError):
    """The extended-MDX query text could not be parsed.

    Carries the 1-based ``line``/``column`` of the offending token whenever
    the parser or lexer knows it, and renders it in the same
    ``line L, column C`` format used by analyzer diagnostics (see
    :mod:`repro.analysis.diagnostics`).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.raw_message = message
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column

    @property
    def span(self):
        """The error position as a :class:`~repro.mdx.span.SourceSpan`
        (``None`` when the position is unknown)."""
        from repro.mdx.span import SourceSpan

        if not self.line:
            return None
        return SourceSpan(self.line, self.column)


class MdxEvaluationError(MdxError):
    """A parsed query failed during evaluation (unknown member, bad axis...)."""


class UnknownMemberError(MdxEvaluationError):
    """A member path in a query resolved to nothing."""


class AmbiguousMemberError(MdxEvaluationError):
    """A member path in a query matched more than one dimension."""


class StorageError(ReproError):
    """A chunk-store or array-storage operation failed."""


class WarehouseFormatError(SchemaError):
    """A persisted warehouse file is missing, truncated, or malformed.

    Carries the offending ``path`` and, when known, the store's declared
    ``format_version`` so callers can distinguish "this is not a warehouse"
    from "this warehouse is newer than this build".
    """

    def __init__(
        self,
        message: str,
        *,
        path: "str | None" = None,
        format_version: "object | None" = None,
    ) -> None:
        detail = message
        if path is not None:
            detail = f"{detail} (path: {path}"
            if format_version is not None:
                detail = f"{detail}, format_version: {format_version!r}"
            detail = f"{detail})"
        elif format_version is not None:
            detail = f"{detail} (format_version: {format_version!r})"
        super().__init__(detail)
        self.path = path
        self.format_version = format_version


class WarehouseCorruptionError(StorageError):
    """A persisted warehouse failed integrity checks and could not be
    recovered from any earlier generation.

    ``lost`` names exactly which files were torn/corrupt/missing;
    ``quarantined`` lists where the damaged originals were moved
    (``*.corrupt`` siblings) for post-mortem inspection.
    """

    def __init__(
        self,
        message: str,
        *,
        lost: "tuple[str, ...]" = (),
        quarantined: "tuple[str, ...]" = (),
    ) -> None:
        if lost:
            message = f"{message}; lost: {', '.join(lost)}"
        if quarantined:
            message = f"{message}; quarantined: {', '.join(quarantined)}"
        super().__init__(message)
        self.lost = lost
        self.quarantined = quarantined


class FaultInjectedError(ReproError):
    """An armed failpoint fired (see :mod:`repro.faults`).

    Deliberately *outside* the Storage/Mdx subtrees so production error
    handling cannot accidentally swallow an injected crash as a routine
    failure — tests that arm a failpoint see exactly this type.
    """

    def __init__(self, failpoint: str, message: "str | None" = None) -> None:
        super().__init__(message or f"injected fault at failpoint {failpoint!r}")
        self.failpoint = failpoint


class TransientFaultError(FaultInjectedError):
    """An injected fault that models a *transient* failure (e.g. EINTR,
    a momentary I/O hiccup).  Retry wrappers treat this as retryable;
    a plain :class:`FaultInjectedError` is terminal."""


class CatalogError(ReproError):
    """Base class for scenario-catalog failures (:mod:`repro.catalog`)."""


class ScenarioNotFoundError(CatalogError):
    """A catalog operation named a scenario that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"scenario {name!r} does not exist in the catalog")
        self.name = name


class ScenarioExistsError(CatalogError):
    """A create/fork tried to reuse an existing scenario name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"scenario {name!r} already exists in the catalog")
        self.name = name


class ScenarioConflictError(CatalogError):
    """A merge or rebase found chunks changed on both sides.

    Conflicts are detected at *chunk* granularity (see
    :mod:`repro.catalog.model`): two branches that touched the same chunk
    cannot be combined automatically.  ``chunks`` names the conflicting
    chunk keys and ``addresses`` the changed cell addresses inside them,
    so callers can resolve explicitly (``on_conflict="ours"/"theirs"``).
    """

    def __init__(
        self,
        message: str,
        *,
        chunks: "tuple[str, ...]" = (),
        addresses: "tuple[tuple[str, ...], ...]" = (),
    ) -> None:
        if chunks:
            message = f"{message}; conflicting chunks: {', '.join(chunks)}"
        if addresses:
            rendered = ", ".join("/".join(addr) for addr in addresses[:8])
            if len(addresses) > 8:
                rendered += f", ... ({len(addresses)} total)"
            message = f"{message}; conflicting addresses: {rendered}"
        super().__init__(message)
        self.chunks = chunks
        self.addresses = addresses


class ScenarioQuotaError(CatalogError):
    """A tenant exceeded its scenario-catalog quota.

    The breach degrades gracefully: the offending operation fails with
    this typed error and **nothing is evicted silently** — existing
    scenarios are never dropped to make room.  ``quota`` names which
    limit tripped (``"max-scenarios"`` or ``"max-delta-bytes"``).
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str = "",
        quota: str = "",
        limit: int = 0,
        used: int = 0,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.used = used


class CatalogCorruptionError(CatalogError, StorageError):
    """A persisted scenario catalog failed integrity checks beyond what
    journal replay could repair.

    ``lost`` names the scenarios whose delta files are gone for good;
    ``quarantined`` lists the ``*.corrupt`` siblings holding the damaged
    originals for post-mortem inspection.  Opening with
    ``allow_lost=True`` drops the named scenarios (recorded in the
    recovery report) instead of raising.
    """

    def __init__(
        self,
        message: str,
        *,
        lost: "tuple[str, ...]" = (),
        quarantined: "tuple[str, ...]" = (),
    ) -> None:
        if lost:
            message = f"{message}; lost: {', '.join(lost)}"
        if quarantined:
            message = f"{message}; quarantined: {', '.join(quarantined)}"
        super().__init__(message)
        self.lost = lost
        self.quarantined = quarantined


class QueryBudgetExceededError(ReproError):
    """A query exhausted its :class:`~repro.mdx.budget.QueryBudget` in a
    phase that cannot produce a partial result (axis resolution).  Cell
    evaluation never raises this — it degrades to ⊥ cells instead."""

    def __init__(self, message: str, *, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class SnapshotImmutableError(ReproError):
    """A mutation was attempted on a frozen snapshot cube.

    Snapshot isolation (see :mod:`repro.service`) pins in-flight queries
    to an immutable read view; writes must go to the live warehouse cube,
    never to the view a concurrent reader holds.
    """


class ServiceError(ReproError):
    """Base class for concurrent query-service failures
    (:mod:`repro.service`)."""


class ServiceOverloadedError(ServiceError):
    """The service shed a query instead of running it.

    Raised at submit time when the admission queue is full, or at result
    time when the query's deadline fully expired while it waited in the
    queue.  ``reason`` is machine-readable: ``"queue-full"`` or
    ``"deadline-expired"``.
    """

    def __init__(self, message: str, *, reason: str = "queue-full") -> None:
        super().__init__(message)
        self.reason = reason


class ServiceTimeoutError(ServiceError, TimeoutError):
    """A caller-supplied wait on a :class:`~repro.service.QueryTicket`
    expired before the query completed.

    Subclasses the builtin :class:`TimeoutError` so callers written
    against the ``concurrent.futures`` convention (``except TimeoutError``)
    keep working, while staying inside the :class:`ReproError` taxonomy
    the service's entry-point lint requires.
    """


class CircuitOpenError(ServiceError):
    """The service's circuit breaker is open: repeated failpoint or
    corruption errors tripped it, and submissions fail fast until the
    backoff elapses and a half-open probe succeeds."""


class ServiceStoppedError(ServiceError):
    """A query was submitted to (or was still queued in) a service that
    has been closed."""


class ShardError(ServiceError):
    """A shard process failed in a way the coordinator cannot map back to
    a typed engine error: the worker died mid-request, the pipe broke, or
    the remote raised an exception type unknown to this taxonomy.

    Remote errors that *do* map — injected faults, storage corruption,
    MDX evaluation errors — are re-raised as their own types so breaker
    accounting and HTTP status mapping treat local and sharded execution
    identically; ``ShardError`` is the residue.
    """

    def __init__(self, message: str, *, shard: "int | None" = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardDownError(ShardError):
    """A shard is known-dead (or its supervisor gave up respawning it)
    and the query's degrade policy forbids answering without it.

    Raised only under ``degrade="fail"`` — the ``fallback`` policy
    recomputes the shard's cells on the coordinator instead, and
    ``partial`` returns them as ⊥ with a structured degradation record.
    ``restarts`` is how many times the supervisor has respawned this
    shard so far; ``retry_after_s`` is its estimate of when the next
    respawn attempt lands (the HTTP layer turns it into ``Retry-After``).
    """

    def __init__(
        self,
        message: str,
        *,
        shard: "int | None" = None,
        restarts: int = 0,
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message, shard=shard)
        self.restarts = restarts
        self.retry_after_s = retry_after_s


class LockOrderError(ReproError):
    """The lockdep witness observed a lock acquisition that inverts the
    declared hierarchy (see :mod:`repro.lint.lock_hierarchy`) or an edge
    already recorded in the opposite direction.

    Raised *before* the offending lock is acquired, so the thread that
    would have completed the deadlock cycle fails fast instead of
    blocking forever.  Only ever raised under ``REPRO_LOCKDEP=1``.
    """

    def __init__(self, message: str, *, holding: str = "", acquiring: str = "") -> None:
        super().__init__(message)
        self.holding = holding
        self.acquiring = acquiring


class QueryError(ReproError):
    """A what-if query is inconsistent (e.g. perspectives outside the
    parameter dimension, or a scenario over a non-varying dimension)."""


class AnalysisError(ReproError):
    """Base class for static-analysis rejections.

    Raised when the analyzer (see :mod:`repro.analysis`) finds error-level
    diagnostics and enforcement is on.  The full report is available as
    ``exc.report``; ``str(exc)`` includes every diagnostic message so
    callers matching on message fragments keep working.
    """


class MdxAnalysisError(AnalysisError, MdxEvaluationError):
    """An extended-MDX query was rejected by static analysis."""

    def __init__(self, report) -> None:
        self.report = report
        super().__init__(
            "query rejected by static analysis:\n" + report.to_text()
        )


class PlanAnalysisError(AnalysisError, QueryError):
    """An algebra plan was rejected by static analysis."""

    def __init__(self, report) -> None:
        self.report = report
        super().__init__(
            "plan rejected by static analysis:\n" + report.to_text()
        )
