"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Subclasses partition the
failure domains: schema/metadata problems, query language problems, rule
evaluation problems, and storage-engine problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A cube schema or dimension hierarchy is malformed or misused."""


class MemberNotFoundError(SchemaError):
    """A dimension member (or member instance) was looked up but not found."""

    def __init__(self, dimension: str, member: str) -> None:
        super().__init__(f"member {member!r} not found in dimension {dimension!r}")
        self.dimension = dimension
        self.member = member


class DuplicateMemberError(SchemaError):
    """An attempt was made to add a member name that already exists."""


class InvalidChangeError(ReproError):
    """A structural change violates Definition 3.1 (legal changes)."""


class ValidityError(ReproError):
    """A validity-set operation is inconsistent (e.g. overlapping instances)."""


class RuleError(ReproError):
    """A derived-cell rule is malformed or fails during evaluation."""


class FormulaSyntaxError(RuleError):
    """A rule formula could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class MdxError(ReproError):
    """Base class for extended-MDX language errors."""


class MdxSyntaxError(MdxError):
    """The extended-MDX query text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class MdxEvaluationError(MdxError):
    """A parsed query failed during evaluation (unknown member, bad axis...)."""


class StorageError(ReproError):
    """A chunk-store or array-storage operation failed."""


class QueryError(ReproError):
    """A what-if query is inconsistent (e.g. perspectives outside the
    parameter dimension, or a scenario over a non-varying dimension)."""
