"""Unified metrics registry: counters, gauges, log-scale histograms.

One :class:`MetricsRegistry` replaces the ad-hoc counter objects the
engine grew (``CacheStats`` on the scenario cache and rollup index,
``IoStats`` on chunk stores) as the *export* surface: the stats objects
stay where they are — they are hot-path mutable structs — and register
themselves as pull-based **collectors**, so one ``snapshot()`` call sees
every counter in the process next to the registry's own instruments.

Instruments are identified by name plus sorted labels, Prometheus-style::

    METRICS.counter("mdx_queries_total", workload="workforce").inc()
    METRICS.histogram("mdx_query_ms").observe(wall_ms)

Exports:

* :meth:`MetricsRegistry.snapshot` — nested plain dict (tests, JSON)
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
* :meth:`MetricsRegistry.to_json_lines` — one JSON object per metric line

Histograms are **log-scale**: bucket upper bounds are powers of two from
2^-10 ms (~1 µs) to 2^14 ms (~16 s), which spans cache-hit cell reads to
pathological full-scan queries in 25 buckets.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Iterable

from repro.lint.lockdep import make_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
]

Labels = tuple[tuple[str, str], ...]

#: the Content-Type header for :meth:`MetricsRegistry.to_prometheus`
#: responses (text exposition format 0.0.4)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: log2 upper bounds: 2^-10 ms .. 2^14 ms, then +Inf
_BUCKET_EXPONENTS = range(-10, 15)
_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(2.0**e) for e in _BUCKET_EXPONENTS
)


class Counter:
    """A monotonically increasing value.

    Updates are atomic: ``+=`` on an attribute is a read-modify-write the
    GIL may interleave, so concurrent service workers would lose
    increments without the per-instrument lock.
    """

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = make_lock("Counter._lock", reentrant=False)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (updates atomic, like Counter)."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = make_lock("Gauge._lock", reentrant=False)

    def set(self, value: float) -> None:
        # a float store is atomic under the GIL, but free-threaded
        # builds and torn read-modify-write interleavings with inc/dec
        # are not; same contract as Counter.inc
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def sample(self) -> float:
        return self.value


class Histogram:
    """Log-scale (powers-of-two) latency histogram in milliseconds.

    ``observe`` updates five fields that must stay mutually consistent
    (bucket counts vs ``count`` vs ``sum``), so it runs under one
    per-instrument lock.
    """

    __slots__ = ("counts", "total", "count", "minimum", "maximum", "_lock")
    kind = "histogram"

    def __init__(self) -> None:
        # one slot per bound plus the +Inf overflow slot
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.total = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._lock = make_lock("Histogram._lock", reentrant=False)

    @staticmethod
    def bucket_index(value: float) -> int:
        """Index of the first bucket whose upper bound holds ``value``."""
        if value <= _BUCKET_BOUNDS[0]:
            return 0
        if value > _BUCKET_BOUNDS[-1]:
            return len(_BUCKET_BOUNDS)
        # ceil(log2(value)) maps straight onto the exponent grid
        exponent = math.ceil(math.log2(value))
        return exponent - _BUCKET_EXPONENTS.start

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[self.bucket_index(value)] += 1
            self.total += value
            self.count += 1
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    def sample(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "count": self.count,
            "sum": round(self.total, 6),
        }
        if self.count:
            payload["min"] = round(self.minimum, 6)
            payload["max"] = round(self.maximum, 6)
            payload["mean"] = round(self.total / self.count, 6)
        payload["buckets"] = {
            _bound_label(i): n for i, n in enumerate(self.counts) if n
        }
        return payload

    def cumulative_buckets(self) -> Iterable[tuple[str, int]]:
        """(le-label, cumulative count) pairs, Prometheus semantics."""
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            yield _bound_label(i), running


def _bound_label(index: int) -> str:
    if index >= len(_BUCKET_BOUNDS):
        return "+Inf"
    return format(_BUCKET_BOUNDS[index], "g")


def _label_key(labels: dict[str, str]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """Named, labeled instruments plus pull-based external collectors."""

    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock", reentrant=False)
        #: name -> {labels -> instrument}; all series of one name share a kind
        self._metrics: dict[str, dict[Labels, Any]] = {}
        #: collector name -> zero-arg callable returning {key: number}
        self._collectors: dict[str, Callable[[], dict[str, Any]]] = {}

    # -- instruments -----------------------------------------------------------------

    def _instrument(self, factory: type, name: str, labels: dict[str, str]) -> Any:
        key = _label_key(labels)
        series = self._metrics.get(name)
        if series is None:
            with self._lock:
                series = self._metrics.setdefault(name, {})
        instrument = series.get(key)
        if instrument is None:
            with self._lock:
                instrument = series.get(key)
                if instrument is None:
                    instrument = factory()
                    series[key] = instrument
        if not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"requested as {factory.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._instrument(Histogram, name, labels)

    def value(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Read one counter/gauge series without creating it.

        Assertions and health endpoints probe series that may not have
        fired yet (``breaker_probe_total{outcome="fail"}`` on a healthy
        pool); going through :meth:`counter` would materialise an empty
        series as a side effect of *reading* it, which skews exports.
        """
        series = self._metrics.get(name)
        if series is None:
            return default
        instrument = series.get(_label_key(labels))
        if instrument is None:
            return default
        sampled = instrument.sample()
        return float(sampled) if not isinstance(sampled, dict) else default

    # -- collectors ------------------------------------------------------------------

    def register_collector(
        self, name: str, collect: Callable[[], dict[str, Any]]
    ) -> None:
        """Register an external stats source (e.g. a ``CacheStats``
        ``snapshot`` bound method).  Its keys appear in exports as
        ``<name>.<key>`` gauges, read at snapshot time — so hot-path code
        keeps mutating its own struct with zero indirection."""
        with self._lock:
            self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- exports ---------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every metric and collector value as one nested plain dict."""
        out: dict[str, Any] = {}
        for name, series in sorted(self._metrics.items()):
            for labels, instrument in sorted(series.items()):
                key = name if not labels else (
                    name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                )
                out[key] = instrument.sample()
        for name, collect in sorted(self._collectors.items()):
            for key, value in sorted(collect().items()):
                out[f"{name}.{key}"] = value
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (:data:`PROMETHEUS_CONTENT_TYPE`)."""
        lines: list[str] = []
        for name, series in sorted(self._metrics.items()):
            prom = _prom_name(name)
            kind = next(iter(series.values())).kind
            lines.append(f"# TYPE {prom} {kind}")
            for labels, instrument in sorted(series.items()):
                if isinstance(instrument, Histogram):
                    for le, cumulative in instrument.cumulative_buckets():
                        bucket_labels = labels + (("le", le),)
                        lines.append(
                            f"{prom}_bucket{_prom_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{prom}_sum{_prom_labels(labels)} {instrument.total}"
                    )
                    lines.append(
                        f"{prom}_count{_prom_labels(labels)} {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{prom}{_prom_labels(labels)} {instrument.sample()}"
                    )
        for name, collect in sorted(self._collectors.items()):
            for key, value in sorted(collect().items()):
                prom = _prom_name(f"{name}.{key}")
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {value}")
        return "\n".join(lines) + "\n"

    def to_json_lines(self) -> str:
        """One compact JSON object per metric, newline-delimited."""
        lines = [
            json.dumps({"metric": key, "value": value}, sort_keys=True)
            for key, value in self.snapshot().items()
        ]
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument and collector (tests)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


#: The process-wide registry used by instrumented modules (durability,
#: faults, chunk IO).  Warehouses additionally keep their own registry
#: for per-warehouse cache collectors — see ``Warehouse.metrics``.
METRICS = MetricsRegistry()
