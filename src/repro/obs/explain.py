"""EXPLAIN for extended-MDX queries: plan, sizes, scope estimates.

``explain_query`` answers "what would this query *do*" without filling
the result grid: it parses, runs the static analyzer, renders the
scenario pipeline in the paper's algebra (σ/Φ/ρ/S/E, Sec. 4), resolves
the axis sets (instances surviving the scenario, exactly as execution
would), and estimates every grid cell's **scope size** from the rollup
index — the per-coordinate leaf buckets give ``min |bucket|`` as a cheap
upper bound on the number of leaf cells a derived cell must aggregate,
the same quantity that dominates Figs. 11–13.

Axis resolution applies the WITH-clause scenario (through the scenario
cache), because instance expansion depends on output validity; cell
evaluation — the dominant cost — is never performed.

Surfaced as ``python -m repro explain <query-file>`` (``--json`` for the
structured report).
"""

from __future__ import annotations

from typing import Any

from repro.mdx.parser import parse_query
from repro.obs.trace import trace_span

__all__ = ["explain_query", "explain_report"]

#: grid cells beyond this are not individually estimated (summary only)
_ESTIMATE_CAP = 4096


def _scenario_steps(query) -> list[dict[str, Any]]:
    """The WITH-clause pipeline as algebra steps, application order."""
    steps: list[dict[str, Any]] = []
    if query.changes is not None:
        clause = query.changes
        steps.append(
            {
                "operator": "Split",
                "algebra": "E ∘ S(·, R)",
                "dimension": clause.dimension or "<inferred>",
                "changes": len(clause.changes),
                "mode": clause.mode,
                "label": (
                    f"Split[{clause.dimension or '<inferred>'}: "
                    f"{len(clause.changes)} change(s), {clause.mode}]"
                ),
            }
        )
    if query.perspective is not None:
        clause = query.perspective
        steps.append(
            {
                "operator": "Perspective",
                "algebra": "E ∘ ρ(·, Φ_sem(VS, P)) ∘ σ",
                "dimension": clause.dimension,
                "perspectives": list(clause.perspectives),
                "semantics": clause.semantics,
                "mode": clause.mode,
                "label": (
                    f"Perspective[{clause.dimension}: "
                    f"P={list(clause.perspectives)}, {clause.semantics}, "
                    f"{clause.mode}]"
                ),
            }
        )
    return steps


def _scope_estimates(
    warehouse, schema, base_coords: dict[str, str], rows, columns
) -> dict[str, Any]:
    """Estimated scope sizes for the result grid, from the rollup index.

    For each cell address the estimate is the size of the smallest
    constraining per-coordinate bucket — an upper bound on |scope| that
    costs one dict probe per coordinate instead of a set intersection.
    """
    index = warehouse.cube.rollup_index()
    n_leaves = index.n_leaves
    dims = schema.dimensions
    base = [base_coords[d.name] for d in dims]
    dim_index = {d.name: i for i, d in enumerate(dims)}

    n_cells = len(rows) * len(columns)
    estimated = min(n_cells, _ESTIMATE_CAP)
    sizes: list[int] = []
    derived_cells = 0
    for row in rows[: max(1, _ESTIMATE_CAP // max(1, len(columns)))]:
        row_addr = list(base)
        for dim, coord in row.coordinates:
            row_addr[dim_index[dim]] = coord
        for column in columns:
            if len(sizes) >= estimated:
                break
            addr = list(row_addr)
            for dim, coord in column.coordinates:
                addr[dim_index[dim]] = coord
            is_leaf = all(
                schema.coordinate_is_leaf(i, coord)
                for i, coord in enumerate(addr)
            )
            if not is_leaf:
                derived_cells += 1
            estimate = n_leaves
            for i, coord in enumerate(addr):
                bucket = index.candidates(i, coord)
                if bucket is None:
                    estimate = 0
                    break
                if len(bucket) < estimate:
                    estimate = len(bucket)
            sizes.append(estimate)

    summary: dict[str, Any] = {
        "grid_cells": n_cells,
        "cells_estimated": len(sizes),
        "derived_cells_estimated": derived_cells,
        "index_leaves": n_leaves,
    }
    if sizes:
        summary.update(
            {
                "min": min(sizes),
                "max": max(sizes),
                "mean": round(sum(sizes) / len(sizes), 2),
                "total": sum(sizes),
            }
        )
    return summary


def explain_report(warehouse, text: str) -> dict[str, Any]:
    """Structured EXPLAIN: plan, diagnostics, axis sizes, scope estimates.

    Raises :class:`~repro.errors.MdxSyntaxError` on unparseable input.
    When the analyzer reports error-level findings the report carries the
    plan and the diagnostics but skips axis resolution (execution would
    refuse the query the same way) and sets ``"executable": False``.
    """
    with trace_span("obs.explain"):
        query = parse_query(text)
        analysis = warehouse.analyze(query)

        report: dict[str, Any] = {
            "cube": ".".join(query.cube),
            "warehouse": warehouse.name,
            "leaf_cells": warehouse.cube.n_leaf_cells,
            "scenario": _scenario_steps(query),
            "named_sets": [name for name, _ in query.named_sets],
            "diagnostics": [d.to_text() for d in analysis],
            "executable": not analysis.has_errors,
        }
        if analysis.has_errors:
            return report

        # Axis resolution mirrors execution (scenario applied through the
        # cache; budget-free).  Imported lazily to keep obs dependency-light.
        from repro.mdx.evaluator import _as_set, _axis_tuples, _Context
        from repro.mdx.result import AxisTuple

        context = _Context(warehouse, query)
        by_axis = {axis.axis: axis for axis in query.axes}
        columns = _axis_tuples(by_axis["columns"], context)
        rows = (
            _axis_tuples(by_axis["rows"], context)
            if "rows" in by_axis
            else [AxisTuple((), ())]
        )
        slicer: dict[str, str] = {}
        if query.slicer is not None:
            for binding_tuple in _as_set(query.slicer, context):
                for dim, coord, _label in binding_tuple:
                    slicer[dim] = coord

        axes: list[dict[str, Any]] = []
        for axis in query.axes:
            tuples = columns if axis.axis == "columns" else rows
            axes.append(
                {
                    "axis": axis.axis,
                    "tuples": len(tuples),
                    "non_empty": axis.non_empty,
                    "properties": [p.display() for p in axis.properties],
                }
            )
        report["axes"] = axes
        report["slicer"] = dict(sorted(slicer.items()))
        report["scenario_cache"] = dict(context.scenario_stats)

        schema = warehouse.schema
        base_coords = {d.name: d.root.name for d in schema.dimensions}
        base_coords.update(slicer)
        report["scope_estimates"] = _scope_estimates(
            warehouse, schema, base_coords, rows, columns
        )
        return report


def explain_query(warehouse, text: str) -> str:
    """Human-readable EXPLAIN rendering (see :func:`explain_report`)."""
    report = explain_report(warehouse, text)
    lines = [
        f"EXPLAIN  cube={report['cube']}  warehouse={report['warehouse']}  "
        f"leaf_cells={report['leaf_cells']}"
    ]
    if report["scenario"]:
        lines.append("scenario pipeline (applied in order):")
        for i, step in enumerate(report["scenario"], 1):
            lines.append(f"  {i}. {step['label']}    — {step['algebra']}")
    else:
        lines.append("scenario pipeline: none (base cube)")
    if report["named_sets"]:
        lines.append(f"query named sets: {', '.join(report['named_sets'])}")
    for diagnostic in report["diagnostics"]:
        lines.append(f"analyzer: {diagnostic}")
    if not report["executable"]:
        lines.append("plan is NOT executable (error-level findings above)")
        return "\n".join(lines)
    if not report["diagnostics"]:
        lines.append("analyzer: clean")
    for axis in report["axes"]:
        flags = " NON EMPTY" if axis["non_empty"] else ""
        props = (
            f"  properties={','.join(axis['properties'])}"
            if axis["properties"]
            else ""
        )
        lines.append(
            f"axis {axis['axis'].upper()}: {axis['tuples']} tuple(s){flags}{props}"
        )
    if report["slicer"]:
        slicer = ", ".join(f"{k}={v}" for k, v in report["slicer"].items())
        lines.append(f"slicer: {slicer}")
    if report["scenario_cache"]:
        cache = ", ".join(
            f"{k.rsplit('_', 1)[-1]}={v}"
            for k, v in sorted(report["scenario_cache"].items())
        )
        lines.append(f"scenario cache: {cache}")
    est = report["scope_estimates"]
    lines.append(
        f"cells: {est['grid_cells']} grid cell(s); "
        f"{est['derived_cells_estimated']} derived of "
        f"{est['cells_estimated']} estimated"
    )
    if "min" in est:
        lines.append(
            "estimated scope sizes (rollup-index upper bound): "
            f"min={est['min']} max={est['max']} mean={est['mean']} "
            f"total={est['total']}  over {est['index_leaves']} indexed leaves"
        )
    return "\n".join(lines)
