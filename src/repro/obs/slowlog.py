"""Warehouse-level slow-query log: a threshold-gated ring buffer.

Every ``Warehouse.query`` call is wall-timed (two ``perf_counter`` reads
— always on, unlike tracing); calls at or above ``threshold_ms`` land in
a bounded ring buffer together with a normalised query snippet, the
per-query engine counters, and any budget/error outcome.  The newest
entries win: a production warehouse under heavy traffic keeps the last
``capacity`` offenders, not the first.

Dump it from code (``warehouse.slow_log.dump()``) or from the CLI
(``repro query --slow-ms 0 <file>`` prints the log to stderr after the
query; threshold 0 records everything, handy for demos and tests).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.lint.lockdep import make_lock

__all__ = ["SlowQueryEntry", "SlowQueryLog"]

_SNIPPET_LIMIT = 200


def _snippet(text: str) -> str:
    """Whitespace-normalised, length-capped query text for log lines."""
    collapsed = " ".join(text.split())
    if len(collapsed) > _SNIPPET_LIMIT:
        return collapsed[: _SNIPPET_LIMIT - 1] + "…"
    return collapsed


@dataclass(frozen=True)
class SlowQueryEntry:
    """One logged query."""

    #: unix timestamp at record time
    timestamp: float
    wall_ms: float
    query: str
    #: True when the result was budget-degraded (⊥-padded)
    partial: bool = False
    #: repr of the exception when the query failed instead of returning
    error: "str | None" = None
    #: per-query engine counters (MdxResult.stats)
    stats: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "timestamp": self.timestamp,
            "wall_ms": round(self.wall_ms, 3),
            "query": self.query,
            "partial": self.partial,
            "stats": dict(self.stats),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def format(self) -> str:
        marks = ""
        if self.partial:
            marks += " [partial]"
        if self.error is not None:
            marks += f" [error: {self.error}]"
        return f"{self.wall_ms:9.3f}ms{marks}  {self.query}"


class SlowQueryLog:
    """Threshold-gated ring buffer of :class:`SlowQueryEntry`."""

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 128) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self._entries: "deque[SlowQueryEntry]" = deque(maxlen=capacity)
        # counters + ring mutate together; service workers record
        # concurrently, so the update is one critical section
        self._lock = make_lock("SlowQueryLog._lock", reentrant=False)
        #: queries timed (recorded or not) since construction/clear
        self.observed = 0
        #: queries that crossed the threshold (>= capacity may be evicted)
        self.recorded = 0

    @property
    def capacity(self) -> int:
        maxlen = self._entries.maxlen
        assert maxlen is not None
        return maxlen

    def record(
        self,
        query: str,
        wall_ms: float,
        *,
        partial: bool = False,
        error: "str | None" = None,
        stats: "dict[str, int] | None" = None,
    ) -> "SlowQueryEntry | None":
        """Time one query; returns the entry when it crossed the
        threshold, ``None`` when it was fast enough to ignore."""
        with self._lock:
            self.observed += 1
            if wall_ms < self.threshold_ms:
                return None
            entry = SlowQueryEntry(
                timestamp=time.time(),
                wall_ms=wall_ms,
                query=_snippet(query),
                partial=partial,
                error=error,
                stats=dict(stats or {}),
            )
            self._entries.append(entry)
            self.recorded += 1
            return entry

    def entries(self) -> list[SlowQueryEntry]:
        """Oldest-first list of the retained entries."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.observed = 0
            self.recorded = 0

    def __len__(self) -> int:
        return len(self._entries)

    def dump(self) -> str:
        """Human-readable rendering, slowest-offender statistics first."""
        header = (
            f"slow-query log: threshold={self.threshold_ms}ms, "
            f"{len(self._entries)}/{self.capacity} retained, "
            f"{self.recorded}/{self.observed} queries crossed the threshold"
        )
        lines = [header]
        for entry in self.entries():
            lines.append("  " + entry.format())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlowQueryLog(threshold={self.threshold_ms}ms, "
            f"{len(self._entries)}/{self.capacity})"
        )
