"""Zero-dependency tracing core: spans, a tracer, thread-local context.

A :class:`Span` is one timed region of work (monotonic clock, method
``perf_counter``) with a name, attributes, point events, and child spans.
The process-wide :data:`TRACER` keeps a *thread-local* stack of open
spans, so nested ``with trace_span(...)`` blocks anywhere in the call
tree attach to the right parent without threading a handle through every
signature — exactly how the MDX phases (parse → analyze → scenario →
axes → cells) nest under the ``mdx.query`` root span.

Tracing is **off by default** and the disabled fast path is one module
attribute read plus a shared no-op context manager — cheap enough to
leave :func:`trace_span` calls in hot production code (the same contract
as :func:`repro.faults.inject_io_fault`).  Enable it per block with
:func:`tracing`, or globally with ``TRACER.enabled = True``; finished
*root* spans land in ``TRACER.finished`` (a bounded ring) for later
inspection, and :meth:`Tracer.take_last` pops the most recent one (the
hook :class:`~repro.obs.profile.QueryProfile` is built from).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "TRACER",
    "Tracer",
    "trace_event",
    "trace_span",
    "tracing",
]


class Span:
    """One timed region: name, attributes, events, children.

    Spans are context managers bound to their tracer; entering pushes the
    span on the tracer's thread-local stack, exiting finishes it and
    attaches it to its parent (or to ``tracer.finished`` for roots).
    """

    __slots__ = ("name", "attrs", "events", "children", "error", "_t0", "_t1", "_tracer")

    def __init__(self, name: str, attrs: "dict[str, Any] | None" = None, tracer: "Tracer | None" = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.events: list[tuple[str, dict[str, Any]]] = []
        self.children: list[Span] = []
        #: repr of the exception that escaped the span body, if any
        self.error: "str | None" = None
        self._tracer = tracer
        self._t0 = time.perf_counter()
        self._t1: "float | None" = None

    # -- lifecycle ----------------------------------------------------------------

    def finish(self) -> None:
        if self._t1 is None:
            self._t1 = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self._t1 is not None

    @property
    def duration_ms(self) -> float:
        end = self._t1 if self._t1 is not None else time.perf_counter()
        return (end - self._t0) * 1000.0

    # -- annotation ---------------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append((name, attrs))

    # -- structure ----------------------------------------------------------------

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.events:
            payload["events"] = [
                {"name": name, **attrs} for name, attrs in self.events
            ]
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span rendering of the subtree."""
        lines = [f"{'  ' * indent}{self.name}  {self.duration_ms:.3f}ms"]
        for name, _attrs in self.events:
            lines.append(f"{'  ' * (indent + 1)}@ {name}")
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    # -- context-manager protocol ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self.error = repr(exc)
        if self._tracer is not None:
            self._tracer.end(self)
        else:
            self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_ms:.3f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans with a thread-local current-span stack."""

    def __init__(self, capacity: int = 64) -> None:
        #: master switch; all trace_span sites no-op while False
        self.enabled = False
        #: finished root spans, newest last (bounded ring)
        self.finished: "deque[Span]" = deque(maxlen=capacity)
        self._local = threading.local()

    # -- stack ---------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> "Span | None":
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle -------------------------------------------------------------

    def start(self, name: str, attrs: "dict[str, Any] | None" = None) -> Span:
        """Open a span as a child of the current one and make it current."""
        span = Span(name, attrs, tracer=self)
        self._stack().append(span)
        return span

    def end(self, span: Span) -> None:
        """Finish ``span``, popping it (and anything leaked above it)."""
        span.finish()
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.finish()  # leaked child: close it rather than corrupt the stack
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.finished.append(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point event to the current span (no-op when disabled
        or outside any span)."""
        if not self.enabled:
            return
        current = self.current()
        if current is not None:
            current.event(name, **attrs)

    @contextmanager
    def child_scope(self, parent: "Span | None") -> "Iterator[Span | None]":
        """Adopt ``parent`` — a span opened on *another* thread — as this
        thread's current span for the duration of the block.

        The current-span stack is thread-local, so without this a service
        worker that evaluates a submitted query starts an orphan root span:
        the submitting query's trace silently loses the whole evaluation.
        A worker instead runs ``with TRACER.child_scope(job.parent_span):``
        and every span it opens attaches under the submitter's root.

        ``parent`` is *not* finished on exit — it still belongs to the
        thread that started it; only spans leaked above it on this thread's
        stack are closed.  ``parent=None`` is a no-op scope, so call sites
        need no branch for the untraced case.  Attaching children from
        several workers concurrently is safe (list append under the GIL),
        as long as the parent is finished only after its workers complete —
        exactly the :class:`~repro.service.QueryService` join contract.
        """
        if parent is None:
            yield None
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield parent
        finally:
            while stack:
                top = stack.pop()
                if top is parent:
                    break
                top.finish()  # leaked child of this scope: close it

    def take_last(self) -> "Span | None":
        """Pop and return the most recently finished root span."""
        if not self.finished:
            return None
        return self.finished.pop()

    def clear(self) -> None:
        self.finished.clear()
        self._local = threading.local()


#: The process-wide tracer used by every instrumented module.
TRACER = Tracer()


def trace_span(name: str, **attrs: Any) -> "Span | _NullSpan":
    """Open a traced region: ``with trace_span("mdx.cells", n=42) as span``.

    When tracing is disabled this returns a shared no-op context manager
    (and the ``as`` target is ``None``), so call sites stay branch-free.
    """
    if not TRACER.enabled:
        return _NULL_SPAN
    return TRACER.start(name, attrs or None)


def trace_event(name: str, **attrs: Any) -> None:
    """Record a point event on the current span; no-op when disabled."""
    if TRACER.enabled:
        TRACER.event(name, **attrs)


@contextmanager
def tracing(enabled: bool = True):
    """Temporarily flip the global tracer on (or off) for one block."""
    previous = TRACER.enabled
    TRACER.enabled = enabled
    try:
        yield TRACER
    finally:
        TRACER.enabled = previous
