"""Per-query profiles: phase timings, cell counts, cache ratios, events.

A :class:`QueryProfile` is the structured answer to "where did this query
spend its time?" — the per-phase breakdown the paper's own experiments
(Sec. 6, Figs. 11–13) presuppose.  It is built from the ``mdx.query``
root span when tracing is enabled (``repro query --profile``, or
``with tracing(): warehouse.query(...)``) and attached to
``MdxResult.profile``; with tracing disabled it is never constructed and
the result object carries ``None``.

Phases mirror the evaluator pipeline: ``parse`` → ``analyze`` →
``scenario`` (Φ/ρ/S/E application, Sec. 4) → ``axes`` (set resolution)
→ ``cells`` (grid fill) → ``finalize`` (NON EMPTY pruning + assembly).
``validate_profile`` checks a serialized profile against
:data:`PROFILE_SCHEMA` (a minimal JSON-Schema subset evaluated in-process
so CI needs no extra dependency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import Span

__all__ = ["PROFILE_SCHEMA", "QueryProfile", "validate_profile"]

#: evaluator pipeline phases, in execution order (span names are
#: ``mdx.<phase>`` under the ``mdx.query`` root)
PHASES = ("parse", "analyze", "scenario", "axes", "cells", "finalize")


@dataclass
class QueryProfile:
    """One query's observability record (see module docstring)."""

    #: wall time of the whole query (the ``mdx.query`` root span)
    total_ms: float
    #: phase name -> milliseconds, execution order preserved
    phases: dict[str, float]
    cells_evaluated: int = 0
    cells_skipped: int = 0
    #: engine counters (scenario_cache_hits/misses, indexed_rollups, ...)
    stats: dict[str, int] = field(default_factory=dict)
    #: structured budget-degradation records (empty = complete result)
    degradations: list[dict[str, Any]] = field(default_factory=list)
    #: failpoints that fired during the query: {failpoint: times}
    fault_events: dict[str, int] = field(default_factory=dict)
    #: full span tree (attrs, events, children) for deep dives
    spans: "dict[str, Any] | None" = None

    @property
    def phase_sum_ms(self) -> float:
        return sum(self.phases.values())

    @property
    def cache_hit_ratio(self) -> "float | None":
        """Scenario-cache hit ratio for this query; None when untouched."""
        hits = self.stats.get("scenario_cache_hits", 0)
        misses = self.stats.get("scenario_cache_misses", 0)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    @classmethod
    def from_span(
        cls,
        root: Span,
        *,
        stats: "dict[str, int] | None" = None,
        degradations: "list[dict[str, Any]] | None" = None,
        fault_events: "dict[str, int] | None" = None,
        keep_spans: bool = True,
    ) -> "QueryProfile":
        """Build a profile from a finished ``mdx.query`` root span."""
        phases: dict[str, float] = {}
        for child in root.children:
            name = child.name.rsplit(".", 1)[-1]
            phases[name] = phases.get(name, 0.0) + child.duration_ms
        stats = dict(stats or {})
        return cls(
            total_ms=root.duration_ms,
            phases=phases,
            cells_evaluated=int(stats.get("cells_evaluated", 0)),
            cells_skipped=int(stats.get("cells_skipped", 0)),
            stats=stats,
            degradations=list(degradations or []),
            fault_events=dict(fault_events or {}),
            spans=root.to_dict() if keep_spans else None,
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "total_ms": round(self.total_ms, 6),
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "cells_evaluated": self.cells_evaluated,
            "cells_skipped": self.cells_skipped,
            "stats": dict(self.stats),
            "degradations": list(self.degradations),
            "fault_events": dict(self.fault_events),
        }
        if self.spans is not None:
            payload["spans"] = self.spans
        return payload

    def render(self) -> str:
        """Human-readable breakdown for ``repro query --profile``."""
        lines = ["query profile"]
        for phase in PHASES:
            if phase in self.phases:
                ms = self.phases[phase]
                share = 100.0 * ms / self.total_ms if self.total_ms else 0.0
                lines.append(f"  {phase:<9} {ms:>10.3f}ms  {share:5.1f}%")
        for phase, ms in self.phases.items():  # phases outside the taxonomy
            if phase not in PHASES:
                lines.append(f"  {phase:<9} {ms:>10.3f}ms")
        lines.append(f"  {'total':<9} {self.total_ms:>10.3f}ms")
        lines.append(
            f"  cells: {self.cells_evaluated} evaluated, "
            f"{self.cells_skipped} skipped"
        )
        ratio = self.cache_hit_ratio
        if ratio is not None:
            lines.append(f"  scenario cache hit ratio: {ratio:.2f}")
        if self.stats.get("indexed_rollups"):
            lines.append(
                f"  indexed rollups: {self.stats['indexed_rollups']}"
            )
        for degradation in self.degradations:
            lines.append(f"  degraded: {degradation.get('detail', '?')}")
        for failpoint, fired in sorted(self.fault_events.items()):
            lines.append(f"  fault fired: {failpoint} x{fired}")
        return "\n".join(lines)


#: Minimal JSON-Schema-style description of ``QueryProfile.to_dict()``.
PROFILE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "total_ms",
        "phases",
        "cells_evaluated",
        "cells_skipped",
        "stats",
        "degradations",
        "fault_events",
    ],
    "properties": {
        "total_ms": {"type": "number", "minimum": 0},
        "phases": {"type": "object", "values": {"type": "number", "minimum": 0}},
        "cells_evaluated": {"type": "integer", "minimum": 0},
        "cells_skipped": {"type": "integer", "minimum": 0},
        "stats": {"type": "object", "values": {"type": "number"}},
        "degradations": {"type": "array", "items": {"type": "object"}},
        "fault_events": {"type": "object", "values": {"type": "integer", "minimum": 0}},
        "spans": {"type": "object"},
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "number": (int, float),
    "integer": int,
    "string": str,
    "boolean": bool,
}


def _check(value: Any, schema: dict[str, Any], path: str) -> None:
    expected = _TYPES[schema["type"]]
    if isinstance(value, bool) and schema["type"] in ("number", "integer"):
        raise ValueError(f"{path}: booleans are not {schema['type']}s")
    if not isinstance(value, expected):
        raise ValueError(
            f"{path}: expected {schema['type']}, "
            f"found {type(value).__name__}"
        )
    minimum = schema.get("minimum")
    if minimum is not None and value < minimum:
        raise ValueError(f"{path}: {value} < minimum {minimum}")
    if schema["type"] == "object":
        for key in schema.get("required", ()):
            if key not in value:
                raise ValueError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in value:
                _check(value[key], subschema, f"{path}.{key}")
        values_schema = schema.get("values")
        if values_schema is not None:
            for key, item in value.items():
                _check(item, values_schema, f"{path}.{key}")
    elif schema["type"] == "array":
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                _check(item, items, f"{path}[{i}]")


def validate_profile(payload: Any) -> None:
    """Raise ``ValueError`` when ``payload`` does not conform to
    :data:`PROFILE_SCHEMA`; return silently when it does."""
    _check(payload, PROFILE_SCHEMA, "profile")
