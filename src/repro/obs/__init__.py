"""Query observability: tracing, metrics, profiles, EXPLAIN, slow log.

The layer every perf/robustness PR measures itself with (see
``docs/observability.md``):

* :mod:`repro.obs.trace` — ``Span``/``Tracer`` with nested, thread-local
  spans; off by default, enabled per block with :func:`tracing`.
* :mod:`repro.obs.metrics` — one :class:`MetricsRegistry` (counters,
  gauges, log-scale histograms) absorbing the engine's ``CacheStats`` /
  ``IoStats`` counters as pull-based collectors; Prometheus-text,
  JSON-lines, and plain-dict exports.
* :mod:`repro.obs.profile` — per-query :class:`QueryProfile` (phase
  timings, cell counts, cache ratios, budget/fault events) attached to
  ``MdxResult.profile`` when tracing is on.
* :mod:`repro.obs.slowlog` — warehouse-level :class:`SlowQueryLog`
  ring buffer.
* :mod:`repro.obs.explain` — ``repro explain``: the analyzed plan plus
  rollup-index scope estimates, without filling the grid.
"""

from repro.obs.explain import explain_query, explain_report
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.profile import PROFILE_SCHEMA, QueryProfile, validate_profile
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import TRACER, Span, Tracer, trace_event, trace_span, tracing

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "PROFILE_SCHEMA",
    "QueryProfile",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "TRACER",
    "Tracer",
    "explain_query",
    "explain_report",
    "trace_event",
    "trace_span",
    "tracing",
    "validate_profile",
]
