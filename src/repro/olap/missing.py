"""The ⊥ ("meaningless") cell value.

The paper renders meaningless combinations — e.g. ``(FTE/Joe, Feb)`` when
``FTE/Joe`` is not valid in Feb — as the null value ⊥.  We model ⊥ with a
dedicated singleton, :data:`MISSING`, distinct from a stored ``0.0``.  The
sparse cube treats absent cells as MISSING; aggregation skips MISSING inputs
and yields MISSING when every input is MISSING.
"""

from __future__ import annotations

__all__ = ["MISSING", "Missing", "is_missing"]


class Missing:
    """Singleton type for the ⊥ value.  Falsy, not equal to any number."""

    _instance: "Missing | None" = None

    def __new__(cls) -> "Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "MISSING"

    def __reduce__(self) -> "tuple[type[Missing], tuple[()]]":
        # keep the singleton under pickling
        return (Missing, ())


MISSING = Missing()


def is_missing(value: object) -> bool:
    """True for the MISSING sentinel (and for ``None``, tolerated on input)."""
    return value is MISSING or value is None
