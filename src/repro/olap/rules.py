"""Scoped rules for derived cells (Sec. 2 of the paper).

Rules specify how derived cell values are computed from other cells.  The
paper's examples::

    (1) Margin = Sales - COGS
    (2) For Market = West:  Margin = Sales - COGS
    (3) For Market = East:  Margin = 0.93 * Sales - COGS
    (4) Margin% = Margin / COGS * 100
    (5) rollup of Margin over Time children

A :class:`Rule` binds a *target member* of one dimension (usually the
measures dimension) to a formula, optionally restricted by a *scope* — a
mapping ``dimension name -> member`` that the cell's address must fall
under.  When several rules match a cell, the most specific (largest scope)
wins; among equally specific rules the one defined last wins, mirroring
calc-script override order in Essbase.

Cells whose coordinates are non-leaf on dimensions other than the rule's
target dimension are computed by evaluating the formula *at the aggregate*:
each operand is resolved via the cube's :meth:`effective_value`, which
rolls up non-leaf operands first.  This keeps ratio measures like
``Margin%`` correct at aggregates (sum-of-ratios would not be).

Cells with no matching formula rule fall back to the engine's default
aggregator (sum) over their descendant leaf scope.
"""

from __future__ import annotations

from typing import Mapping, Sequence, TypeAlias

from repro.errors import RuleError
from repro.olap.formula import Expr, parse_formula
from repro.olap.missing import Missing
from repro.olap.schema import Address, CubeSchema

__all__ = ["Rule", "RuleEngine"]

CellValue: TypeAlias = "float | Missing"


class Rule:
    """A formula rule for one target member, with an optional scope.

    Parameters
    ----------
    target:
        Member whose cells this rule defines (e.g. ``"Margin"``).
    formula:
        The right-hand side, as text (parsed) or a pre-built :class:`Expr`.
    dimension:
        Name of the dimension that ``target`` (and bare member references in
        the formula) belong to; defaults to the schema's measures dimension
        at registration time.
    scope:
        Optional ``{dimension name: member}`` restriction; the rule applies
        only to cells whose coordinate on each scoped dimension equals or
        rolls up into the given member.
    """

    def __init__(
        self,
        target: str,
        formula: str | Expr,
        dimension: str | None = None,
        scope: Mapping[str, str] | None = None,
    ) -> None:
        self.target = target
        self.expression = (
            parse_formula(formula) if isinstance(formula, str) else formula
        )
        self.dimension = dimension
        self.scope: dict[str, str] = dict(scope or {})

    @property
    def specificity(self) -> int:
        return len(self.scope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = f", scope={self.scope}" if self.scope else ""
        return f"Rule({self.target!r}{scope})"


def _coord_matches(
    schema: CubeSchema, dim_index: int, coord: str, scope_coord: str
) -> bool:
    """Whether an address coordinate falls under a scope member."""
    if coord == scope_coord:
        return True
    if schema.coordinate_is_leaf(dim_index, coord):
        return schema.is_under(dim_index, coord, scope_coord)
    dimension = schema.dimensions[dim_index]
    if schema.is_varying(dimension.name):
        # Non-leaf member of a varying dimension: use the skeleton hierarchy.
        if coord in dimension and scope_coord in dimension:
            return dimension.member(coord).is_descendant_of(
                dimension.member(scope_coord)
            )
        return False
    return dimension.member(coord).is_descendant_of(dimension.member(scope_coord))


class RuleEngine:
    """Evaluates derived cells against an ordered rule set.

    The engine is attached to a :class:`~repro.olap.cube.Cube` (its
    ``rules`` attribute); :meth:`evaluate_cell` is re-entrant across member
    references with cycle detection.
    """

    def __init__(
        self, schema: CubeSchema, default_aggregator: str = "sum"
    ) -> None:
        self.schema = schema
        self.default_aggregator = default_aggregator
        self._rules: list[Rule] = []
        self._measures_name = self._default_rule_dimension()
        self._in_flight: set[tuple[Address, str]] = set()

    def _default_rule_dimension(self) -> str | None:
        measures = self.schema.measures_dimension()
        return measures.name if measures is not None else None

    # -- registration -----------------------------------------------------------

    def add_rule(self, rule: Rule) -> Rule:
        if rule.dimension is None:
            if self._measures_name is None:
                raise RuleError(
                    "rule has no dimension and the schema has no measures "
                    "dimension to default to"
                )
            rule.dimension = self._measures_name
        self.schema.dim_index(rule.dimension)  # validates
        for dim_name in rule.scope:
            self.schema.dim_index(dim_name)
        self._rules.append(rule)
        return rule

    def define(
        self,
        target: str,
        formula: str,
        dimension: str | None = None,
        scope: Mapping[str, str] | None = None,
    ) -> Rule:
        """Parse and register a rule in one call."""
        return self.add_rule(Rule(target, formula, dimension, scope))

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules)

    # -- matching -----------------------------------------------------------------

    def _matching_rule(self, address: Address) -> Rule | None:
        best: Rule | None = None
        best_key = (-1, -1)
        for order, rule in enumerate(self._rules):
            dim_index = self.schema.dim_index(rule.dimension)  # type: ignore[arg-type]
            if address[dim_index] != rule.target:
                continue
            if not all(
                _coord_matches(
                    self.schema,
                    self.schema.dim_index(dim_name),
                    address[self.schema.dim_index(dim_name)],
                    scope_coord,
                )
                for dim_name, scope_coord in rule.scope.items()
            ):
                continue
            key = (rule.specificity, order)
            if key > best_key:
                best, best_key = rule, key
        return best

    def has_rule_for(self, cube: "object", address: Sequence[str]) -> bool:
        addr = self.schema.validate_address(address)
        return self._matching_rule(addr) is not None

    # -- evaluation ----------------------------------------------------------------

    def evaluate_cell(self, cube: "object", address: Sequence[str]) -> CellValue:
        """Value of a derived cell: matching formula rule, else rollup."""
        addr = self.schema.validate_address(address)
        rule = self._matching_rule(addr)
        if rule is None:
            return cube.rollup(addr, self.default_aggregator)  # type: ignore[attr-defined]
        guard = (addr, rule.target)
        if guard in self._in_flight:
            raise RuleError(
                f"cyclic rule dependency while evaluating {rule.target!r} "
                f"at {addr!r}"
            )
        self._in_flight.add(guard)
        try:
            dim_index = self.schema.dim_index(rule.dimension)  # type: ignore[arg-type]

            def resolve(member: str) -> CellValue:
                operand_addr = list(addr)
                operand_addr[dim_index] = member
                return cube.effective_value(tuple(operand_addr))  # type: ignore[attr-defined]

            return rule.expression.evaluate(resolve)
        finally:
            self._in_flight.discard(guard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleEngine({len(self._rules)} rules)"
