"""The semantic (sparse) cube.

An n-dimensional cube maps the cross product of member sets to a numeric
domain (Sec. 2).  We store it sparsely: absent cells are ⊥ (MISSING).  Leaf
cells (every coordinate at leaf level) are *base*; non-leaf cells are
*derived* — their value comes from a rule, defaulting to sum-rollup over
descendant leaf cells.  Derived values may also be *stored* (materialised
aggregates): the paper's non-visual mode keeps such stored values even when
leaf data hypothetically moves, while visual mode re-evaluates rules.

Coordinate conventions are defined in :mod:`repro.olap.schema`.

Rollup serving
--------------
Derived-cell scopes are served by a lazily built
:class:`~repro.perf.rollup_index.RollupIndex` (one pass over the leaf
cells, then O(|scope|) per query), maintained incrementally by
:meth:`set_value`.  ``repro.perf.config.naive_mode()`` restores the
pre-index full-scan path; both paths produce bit-identical values.  Every
mutation bumps :attr:`version`, which the warehouse's scenario cache uses
for invalidation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence, TypeAlias

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.perf.rollup_index import RollupIndex

from repro.errors import RuleError, SnapshotImmutableError
from repro.lint.lockdep import make_lock
from repro.olap.missing import MISSING, Missing, is_missing
from repro.olap.schema import Address, CubeSchema
from repro.perf import config as perf_config

__all__ = ["Cube"]

CellValue: TypeAlias = "float | Missing"


class Cube:
    """A sparse multidimensional cube over a :class:`CubeSchema`.

    Parameters
    ----------
    schema:
        The cube's schema (dimension line-up + varying registry).
    rules:
        Optional rule engine (:class:`repro.olap.rules.RuleEngine`) used to
        evaluate derived cells; without one, derived cells use sum-rollup.
    """

    def __init__(self, schema: CubeSchema, rules: "object | None" = None) -> None:
        self.schema = schema
        self.rules = rules
        self._leaf_cells: dict[Address, float] = {}
        self._stored_derived: dict[Address, float] = {}
        #: mutation counter; bumped by every write so caches keyed on it
        #: (scenario cache, rollup memo) can invalidate
        self._version = 0
        self._rollup_index = None  # lazily built RollupIndex
        #: serialises writers against each other (and against snapshot
        #: copies); readers stay lock-free — concurrent readers of a
        #: *mutating* cube use ``Warehouse.snapshot()`` views instead
        self._lock = make_lock("Cube._lock")
        #: frozen cubes are immutable snapshot views; writes raise
        self._frozen = False

    # -- versioning / index ------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (any leaf or stored-derived write)."""
        return self._version

    @property
    def frozen(self) -> bool:
        """True for immutable snapshot views (see :meth:`frozen_copy`)."""
        return self._frozen

    def freeze(self) -> "Cube":
        """Make this cube immutable: every later mutation raises
        :class:`~repro.errors.SnapshotImmutableError`.  Irreversible —
        take a :meth:`copy` to get a writable cube back."""
        # under the write lock so a freeze can never interleave with an
        # in-flight mutation: the writer either completes before the
        # cube is immutable or sees SnapshotImmutableError
        with self._lock:
            self._frozen = True
        return self

    def _check_writable(self) -> None:
        if self._frozen:
            raise SnapshotImmutableError(
                "cube is a frozen snapshot view (pinned at version "
                f"{self._version}); write to the live warehouse cube instead"
            )

    def frozen_copy(self) -> "Cube":
        """An immutable copy pinned at the current version.

        Taken under the write lock, so the copy can never observe a torn
        mutation: concurrent ``set_value`` calls either happen-before the
        copy entirely or not at all.  Unlike :meth:`copy`, the clone keeps
        the source's ``version`` — it *is* that version, and the scenario
        cache keys on it.

        A built rollup index is *forked*, not dropped: the snapshot gets a
        copy-on-write clone (shared buckets, plane-granular value sharing)
        plus a warm memo, so the first query on a fresh snapshot pays no
        index rebuild.  Lock order here is Cube._lock -> RollupIndex._lock,
        as declared in the lint hierarchy.
        """
        with self._lock:
            clone = Cube(self.schema, self.rules)
            clone._leaf_cells = dict(self._leaf_cells)
            clone._stored_derived = dict(self._stored_derived)
            clone._version = self._version
            clone._frozen = True
            if self._rollup_index is not None:
                clone._rollup_index = self._rollup_index.fork(clone._leaf_cells)
            return clone

    def rollup_index(self) -> "RollupIndex":
        """The cube's rollup index, built on first use.

        The build is guarded by the cube lock: two queries sharing one
        snapshot cube must not race to build two indexes (the loser's
        memo/stats would be silently discarded mid-use).
        """
        index = self._rollup_index
        if index is None:
            from repro.perf.rollup_index import RollupIndex

            with self._lock:
                index = self._rollup_index
                if index is None:
                    index = RollupIndex.build(self)
                    self._rollup_index = index
        return index

    @property
    def has_rollup_index(self) -> bool:
        return self._rollup_index is not None

    def _use_index(self) -> bool:
        return perf_config.engine_enabled()

    # -- write path ------------------------------------------------------------

    def set_value(self, address: Sequence[str], value: object) -> None:
        """Store a cell value; MISSING/None deletes the cell.

        Writers serialise on the cube lock, so the version bump, the cell
        write, and the incremental index maintenance commit as one unit —
        a snapshot copy taken concurrently sees all of it or none.
        """
        self._check_writable()
        addr = self.schema.validate_address(address)
        is_leaf = self.schema.is_leaf_address(addr)
        with self._lock:
            store = self._leaf_cells if is_leaf else self._stored_derived
            index = self._rollup_index
            if is_missing(value):
                if store.pop(addr, None) is None:
                    return  # deleting an absent cell: not a mutation
                self._version += 1
                if is_leaf and index is not None:
                    index.remove_leaf(addr)
            else:
                existed = addr in store
                fvalue = float(value)  # type: ignore[arg-type]
                store[addr] = fvalue
                self._version += 1
                if is_leaf and index is not None:
                    if existed:
                        index.touch_value(addr, fvalue)
                    else:
                        index.add_leaf(addr, fvalue)

    def set(self, value: object, **coords: str) -> None:
        """Keyword-style :meth:`set_value` (``cube.set(10, Time="Jan", ...)``)."""
        self.set_value(self.schema.address(**coords), value)

    def load(self, cells: Iterable[tuple[Sequence[str], object]]) -> None:
        for address, value in cells:
            self.set_value(address, value)

    def apply_overrides(
        self, cells: Iterable[tuple[Sequence[str], object]]
    ) -> None:
        """Bulk-apply cell overrides (MISSING/``None`` deletes) as *one*
        mutation: a single version bump and one locked pass of index
        maintenance, instead of a per-cell :meth:`set_value` round trip.
        Scenario materialisation (:mod:`repro.catalog`) applies whole
        deltas through this.  Deleting absent cells is a no-op and does
        not bump the version, matching :meth:`set_value`.
        """
        self._check_writable()
        schema = self.schema
        validated = []
        for address, value in cells:
            addr = schema.validate_address(address)
            validated.append((addr, schema.is_leaf_address(addr), value))
        with self._lock:
            index = self._rollup_index
            mutated = False
            for addr, is_leaf, value in validated:
                store = self._leaf_cells if is_leaf else self._stored_derived
                if is_missing(value):
                    if store.pop(addr, None) is None:
                        continue
                    mutated = True
                    if is_leaf and index is not None:
                        index.remove_leaf(addr)
                else:
                    existed = addr in store
                    fvalue = float(value)  # type: ignore[arg-type]
                    store[addr] = fvalue
                    mutated = True
                    if is_leaf and index is not None:
                        if existed:
                            index.touch_value(addr, fvalue)
                        else:
                            index.add_leaf(addr, fvalue)
            if mutated:
                self._version += 1

    def clear_stored_derived(self) -> None:
        """Drop all materialised aggregate cells."""
        self._check_writable()
        with self._lock:
            if self._stored_derived:
                self._version += 1
            self._stored_derived.clear()

    # -- read path ---------------------------------------------------------------

    def value(self, address: Sequence[str]) -> CellValue:
        """The *stored* value of a cell (MISSING if not stored)."""
        addr = self.schema.validate_address(address)
        if addr in self._leaf_cells:
            return self._leaf_cells[addr]
        return self._stored_derived.get(addr, MISSING)

    def at(self, **coords: str) -> CellValue:
        """Keyword-style :meth:`value`."""
        return self.value(self.schema.address(**coords))

    def effective_value(self, address: Sequence[str]) -> CellValue:
        """Stored value if present; otherwise rule/rollup for derived cells.

        Leaf cells that are not stored are ⊥ by definition.
        """
        addr = self.schema.validate_address(address)
        if addr in self._leaf_cells:
            return self._leaf_cells[addr]
        if addr in self._stored_derived:
            return self._stored_derived[addr]
        if self.schema.is_leaf_address(addr):
            # A leaf measure governed by a formula rule is still derived.
            if self.rules is not None and self.rules.has_rule_for(self, addr):
                return self.rules.evaluate_cell(self, addr)
            return MISSING
        return self.derive(addr)

    def derive(self, address: Sequence[str]) -> CellValue:
        """Evaluate the rule for a (derived) cell, ignoring any stored value."""
        addr = self.schema.validate_address(address)
        if self.rules is not None:
            return self.rules.evaluate_cell(self, addr)
        return self.rollup(addr)

    def rollup(self, address: Sequence[str], aggregator: str = "sum") -> CellValue:
        """Default derived-cell rule: aggregate descendant leaf cells.

        The scope of a non-leaf cell is the set of its descendant leaf cells
        (Sec. 4.3); leaf coordinates contribute themselves.
        """
        from repro.olap.aggregation import aggregate

        addr = self.schema.validate_address(address)
        if self._use_index():
            return self.rollup_index().rollup(self._leaf_cells, addr, aggregator)
        return aggregate(aggregator, self._scan_scope_values(addr))

    def scope_values(self, address: Sequence[str]) -> Iterator[float]:
        """Values of the leaf cells in a cell's scope."""
        addr = self.schema.validate_address(address)
        if self._use_index():
            leaf = self._leaf_cells
            for leaf_addr in self.rollup_index().scope_addresses(addr):
                yield leaf[leaf_addr]
            return
        yield from self._scan_scope_values(addr)

    def _scan_scope_values(self, addr: Address) -> Iterator[float]:
        """The naive path: one full pass over all leaf cells."""
        for leaf_addr, value in self._leaf_cells.items():
            if self._address_under(leaf_addr, addr):
                yield value

    def scope_cells(self, address: Sequence[str]) -> Iterator[tuple[Address, float]]:
        """(address, value) of leaf cells in a cell's scope."""
        addr = self.schema.validate_address(address)
        if self._use_index():
            yield from self.rollup_index().iter_scope_cells(self._leaf_cells, addr)
            return
        for leaf_addr, value in self._leaf_cells.items():
            if self._address_under(leaf_addr, addr):
                yield leaf_addr, value

    def coord_rolls_up(self, dim_index: int, leaf_coord: str, coord: str) -> bool:
        """Memoised :meth:`CubeSchema.is_under` (public query helper)."""
        return self.schema.is_under_cached(dim_index, leaf_coord, coord)

    def _address_under(self, leaf_addr: Address, addr: Address) -> bool:
        is_under = self.schema.is_under_cached
        return all(
            is_under(i, leaf_addr[i], addr[i])
            for i in range(self.schema.n_dims)
        )

    # -- iteration ------------------------------------------------------------

    def leaf_cells(self) -> Iterator[tuple[Address, float]]:
        yield from self._leaf_cells.items()

    def stored_derived_cells(self) -> Iterator[tuple[Address, float]]:
        yield from self._stored_derived.items()

    def cells(self) -> Iterator[tuple[Address, float]]:
        yield from self._leaf_cells.items()
        yield from self._stored_derived.items()

    @property
    def n_leaf_cells(self) -> int:
        return len(self._leaf_cells)

    @property
    def n_stored_derived(self) -> int:
        return len(self._stored_derived)

    def coordinates_used(self, dim_name: str) -> set[str]:
        """Distinct leaf-cell coordinates appearing on a dimension."""
        index = self.schema.dim_index(dim_name)
        return {addr[index] for addr in self._leaf_cells}

    # -- structure-preserving transforms -----------------------------------------

    def copy(self) -> "Cube":
        # The rollup index is deliberately not carried over: the clone
        # rebuilds it lazily, so the two cubes never share mutable state
        # (ancestor verdicts are shared safely via the schema's cache).
        # Copying a frozen cube yields a writable one — this is how a
        # snapshot is thawed back into a scratch cube.
        with self._lock:
            clone = Cube(self.schema, self.rules)
            clone._leaf_cells = dict(self._leaf_cells)
            clone._stored_derived = dict(self._stored_derived)
            return clone

    def empty_like(self) -> "Cube":
        return Cube(self.schema, self.rules)

    def filter_dimension(
        self, dim_name: str, keep: Callable[[str], bool]
    ) -> "Cube":
        """New cube keeping only cells whose coordinate on ``dim_name``
        satisfies ``keep`` (used by the selection operator σ)."""
        index = self.schema.dim_index(dim_name)
        clone = self.empty_like()
        clone._leaf_cells = {
            addr: value for addr, value in self._leaf_cells.items() if keep(addr[index])
        }
        clone._stored_derived = {
            addr: value
            for addr, value in self._stored_derived.items()
            if keep(addr[index])
        }
        return clone

    def map_leaf_cells(
        self,
        transform: Callable[[Address, float], tuple[Address, object] | None],
    ) -> "Cube":
        """New cube with each leaf cell rewritten (or dropped on ``None``);
        stored derived cells are carried over unchanged."""
        clone = self.empty_like()
        for addr, value in self._leaf_cells.items():
            result = transform(addr, value)
            if result is None:
                continue
            new_addr, new_value = result
            if is_missing(new_value):
                continue
            clone.set_value(new_addr, new_value)
        clone._stored_derived = dict(self._stored_derived)
        return clone

    # -- materialisation ----------------------------------------------------------

    def materialize_derived(self, addresses: Iterable[Sequence[str]]) -> None:
        """Evaluate and store derived values for the given addresses."""
        self._check_writable()
        for address in addresses:
            addr = self.schema.validate_address(address)
            if self.schema.is_leaf_address(addr):
                raise RuleError(
                    f"cannot materialise a leaf address as derived: {addr!r}"
                )
            value = self.derive(addr)
            with self._lock:
                self._version += 1
                if is_missing(value):
                    self._stored_derived.pop(addr, None)
                else:
                    self._stored_derived[addr] = float(value)  # type: ignore[arg-type]

    # -- comparison helpers (for tests) ----------------------------------------------

    def leaf_equal(self, other: "Cube", tolerance: float = 1e-9) -> bool:
        """Whether two cubes have identical leaf cells (within tolerance)."""
        if set(self._leaf_cells) != set(other._leaf_cells):
            return False
        return all(
            abs(value - other._leaf_cells[addr]) <= tolerance
            for addr, value in self._leaf_cells.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cube({self.schema!r}, {len(self._leaf_cells)} leaf cells, "
            f"{len(self._stored_derived)} stored derived)"
        )
