"""Time-series calculations over ordered dimensions.

Sec. 1 notes that OLAP engines "provide special support for calculations
involving ratios, percentages, allocations and time series".  Ratios live
in the rule engine, allocations in
:mod:`repro.core.data_scenario`; this module supplies the time-series
family, evaluated against any cube-like object exposing
``effective_value`` — including :class:`~repro.core.scenario.WhatIfCube`,
so period-to-date and rolling metrics work directly on hypothetical
scenarios.

All functions address cells by a *template address* whose coordinate on
the ordered dimension is replaced per moment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, TypeAlias

from repro.errors import QueryError
from repro.olap.aggregation import aggregate
from repro.olap.dimension import Dimension
from repro.olap.missing import MISSING, Missing, is_missing

if TYPE_CHECKING:
    from repro.olap.schema import CubeSchema

__all__ = [
    "series",
    "period_to_date",
    "rolling",
    "prior_period",
    "period_over_period",
]

CellValue: TypeAlias = "float | Missing"


class CubeView(Protocol):
    """Any cube-like object: a schema plus per-address effective values
    (satisfied by Cube and WhatIfCube alike)."""

    @property
    def schema(self) -> "CubeSchema": ...

    def effective_value(self, address: tuple[str, ...]) -> CellValue: ...


def _leaf_names(dimension: Dimension) -> list[str]:
    if not dimension.ordered:
        raise QueryError(
            f"time-series functions need an ordered dimension; "
            f"{dimension.name!r} is unordered"
        )
    return [m.name for m in dimension.leaf_members()]


def _moment_index(dimension: Dimension, moment: str) -> int:
    return dimension.order_index(moment)


def _value_at(
    view: CubeView,
    schema: "CubeSchema",
    address: Sequence[str],
    dim_index: int,
    name: str,
) -> CellValue:
    probe = list(address)
    probe[dim_index] = name
    return view.effective_value(tuple(probe))


def series(
    view: CubeView, dimension: Dimension, address: Sequence[str]
) -> list[CellValue]:
    """The full leaf-order series of a template address.

    ``view`` is any cube-like object (Cube / WhatIfCube); ``address`` is a
    full address whose coordinate on ``dimension`` is ignored and swept.
    """
    schema = view.schema
    dim_index = schema.dim_index(dimension.name)
    return [
        _value_at(view, schema, address, dim_index, name)
        for name in _leaf_names(dimension)
    ]


def period_to_date(
    view: CubeView,
    dimension: Dimension,
    address: Sequence[str],
    aggregator: str = "sum",
) -> CellValue:
    """Accumulate from the first moment through the address's moment
    (YTD when the dimension is a year of months)."""
    schema = view.schema
    dim_index = schema.dim_index(dimension.name)
    moment = _moment_index(dimension, address[dim_index])
    names = _leaf_names(dimension)[: moment + 1]
    values = [
        _value_at(view, schema, address, dim_index, name) for name in names
    ]
    return aggregate(aggregator, values)


def rolling(
    view: CubeView,
    dimension: Dimension,
    address: Sequence[str],
    window: int,
    aggregator: str = "avg",
) -> CellValue:
    """Aggregate over the trailing ``window`` moments ending at the
    address's moment (fewer at the start of the series)."""
    if window < 1:
        raise QueryError(f"rolling window must be >= 1, got {window}")
    schema = view.schema
    dim_index = schema.dim_index(dimension.name)
    moment = _moment_index(dimension, address[dim_index])
    names = _leaf_names(dimension)[max(0, moment - window + 1) : moment + 1]
    values = [
        _value_at(view, schema, address, dim_index, name) for name in names
    ]
    return aggregate(aggregator, values)


def prior_period(
    view: CubeView, dimension: Dimension, address: Sequence[str], lag: int = 1
) -> CellValue:
    """The value ``lag`` moments earlier (⊥ before the series start)."""
    if lag < 0:
        raise QueryError(f"lag must be non-negative, got {lag}")
    schema = view.schema
    dim_index = schema.dim_index(dimension.name)
    moment = _moment_index(dimension, address[dim_index])
    if moment - lag < 0:
        return MISSING
    names = _leaf_names(dimension)
    return _value_at(view, schema, address, dim_index, names[moment - lag])


def period_over_period(
    view: CubeView, dimension: Dimension, address: Sequence[str], lag: int = 1
) -> CellValue:
    """Change vs ``lag`` moments earlier; ⊥ when either operand is ⊥."""
    current = view.effective_value(tuple(address))
    previous = prior_period(view, dimension, address, lag)
    if is_missing(current) or is_missing(previous):
        return MISSING
    return float(current) - float(previous)
