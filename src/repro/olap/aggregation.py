"""Aggregation functions with ⊥ (MISSING) semantics.

The standard data-warehouse aggregates (sum, avg, min, max, count) are
special cases of the paper's rules (Sec. 2).  All of them skip MISSING
inputs; if every input is MISSING the result is MISSING.  ``count`` counts
non-missing inputs and returns 0 (a real number) when given some inputs but
none non-missing — except that an entirely empty scope is MISSING, matching
the convention that a cell with no descendant data does not exist.

Every aggregator is *streaming*: one pass over the input iterable with O(1)
state, so callers (notably the rollup index, which feeds generator scopes)
never pay for an intermediate list.

Vectorized reduction
--------------------
:func:`reduce_array` is the columnar counterpart used by the rollup
index's plane kernel: it reduces a gathered ``float64`` array of *live*
cell values (liveness is resolved upstream, so no MISSING sentinel ever
appears in the array).  In ``"strict"`` mode the result is bit-identical
to the streaming aggregators above — summation runs through
``np.add.accumulate`` (a sequential scan, unlike ``np.sum``'s pairwise
tree) seeded with the same ``0.0`` the Python loop starts from, and
min/max fall back to the sequential loop whenever a NaN is present
(their NaN outcome is order-dependent).  ``"fast"`` mode uses numpy's
pairwise reductions; it is exactly equal on integer-valued workloads and
within ``repro.perf.config.fast_tolerance()`` otherwise.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeAlias

import numpy as np

from repro.errors import RuleError
from repro.olap.missing import MISSING, Missing, is_missing

__all__ = [
    "AGGREGATORS",
    "aggregate",
    "agg_sum",
    "agg_avg",
    "agg_min",
    "agg_max",
    "agg_count",
    "reduce_array",
]

Number = float
CellValue: TypeAlias = "Number | Missing"


def agg_sum(values: Iterable[object]) -> CellValue:
    total = 0.0
    count = 0
    for v in values:
        if is_missing(v):
            continue
        total += float(v)  # type: ignore[arg-type]
        count += 1
    if count == 0:
        return MISSING
    return total


def agg_avg(values: Iterable[object]) -> CellValue:
    total = 0.0
    count = 0
    for v in values:
        if is_missing(v):
            continue
        total += float(v)  # type: ignore[arg-type]
        count += 1
    if count == 0:
        return MISSING
    return total / count


def agg_min(values: Iterable[object]) -> CellValue:
    best: float | None = None
    for v in values:
        if is_missing(v):
            continue
        value = float(v)  # type: ignore[arg-type]
        if best is None or value < best:
            best = value
    if best is None:
        return MISSING
    return best


def agg_max(values: Iterable[object]) -> CellValue:
    best: float | None = None
    for v in values:
        if is_missing(v):
            continue
        value = float(v)  # type: ignore[arg-type]
        if best is None or value > best:
            best = value
    if best is None:
        return MISSING
    return best


def agg_count(values: Iterable[object]) -> CellValue:
    # Single pass: an empty input is ⊥, an input of only-⊥ cells counts 0.
    seen = 0
    present = 0
    for v in values:
        seen += 1
        if not is_missing(v):
            present += 1
    if seen == 0:
        return MISSING
    return float(present)


AGGREGATORS: dict[str, Callable[[Iterable[object]], CellValue]] = {
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "count": agg_count,
}


def _strict_sum(values: np.ndarray) -> float:
    # np.add.accumulate is a *sequential* left fold (np.sum is pairwise);
    # seeding it with 0.0 reproduces `total = 0.0; total += v` bit for bit,
    # including the 0.0 + (-0.0) == 0.0 first step.
    seeded = np.empty(len(values) + 1, dtype=np.float64)
    seeded[0] = 0.0
    seeded[1:] = values
    return float(np.add.accumulate(seeded)[-1])


def _sequential_extreme(values: np.ndarray, want_min: bool) -> float:
    # Replicates agg_min/agg_max when NaN is among the inputs: the first
    # value is always taken, and NaN never wins (or loses) a comparison —
    # so the outcome depends on NaN's position and numpy's NaN-propagating
    # reductions cannot be used.
    best = float(values[0])
    if want_min:
        for v in values[1:]:
            if v < best:
                best = float(v)
    else:
        for v in values[1:]:
            if v > best:
                best = float(v)
    return best


def reduce_array(name: str, values: np.ndarray, mode: str = "strict") -> CellValue:
    """Reduce a gathered array of live cell values (no MISSING inside).

    ``mode="strict"`` matches the streaming aggregators bit for bit;
    ``mode="fast"`` uses numpy's pairwise reductions (exact on integer
    workloads, within configured tolerance otherwise).  An empty array is
    an empty scope: MISSING for every aggregator, including ``count``.
    """
    n = len(values)
    if n == 0:
        return MISSING
    if name == "count":
        return float(n)
    if name == "sum":
        if mode == "strict":
            return _strict_sum(values)
        return float(np.sum(values))
    if name == "avg":
        if mode == "strict":
            return _strict_sum(values) / n
        return float(np.sum(values)) / n
    if name == "min" or name == "max":
        # NaN semantics are order-dependent in the streaming aggregators;
        # numpy's min/max propagate NaN instead, so guard on its presence.
        if np.isnan(values).any():
            return _sequential_extreme(values, want_min=name == "min")
        return float(np.min(values) if name == "min" else np.max(values))
    raise RuleError(
        f"unknown aggregator {name!r}; expected one of {sorted(AGGREGATORS)}"
    )


def aggregate(name: str, values: Iterable[object]) -> CellValue:
    """Apply a named aggregator; raises :class:`RuleError` for unknown names."""
    try:
        func = AGGREGATORS[name]
    except KeyError:
        raise RuleError(
            f"unknown aggregator {name!r}; expected one of {sorted(AGGREGATORS)}"
        ) from None
    return func(values)
