"""Aggregation functions with ⊥ (MISSING) semantics.

The standard data-warehouse aggregates (sum, avg, min, max, count) are
special cases of the paper's rules (Sec. 2).  All of them skip MISSING
inputs; if every input is MISSING the result is MISSING.  ``count`` counts
non-missing inputs and returns 0 (a real number) when given some inputs but
none non-missing — except that an entirely empty scope is MISSING, matching
the convention that a cell with no descendant data does not exist.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeAlias

from repro.errors import RuleError
from repro.olap.missing import MISSING, Missing, is_missing

__all__ = ["AGGREGATORS", "aggregate", "agg_sum", "agg_avg", "agg_min", "agg_max", "agg_count"]

Number = float
CellValue: TypeAlias = "Number | Missing"


def _present(values: Iterable[object]) -> list[float]:
    return [float(v) for v in values if not is_missing(v)]  # type: ignore[arg-type]


def agg_sum(values: Iterable[object]) -> CellValue:
    present = _present(values)
    if not present:
        return MISSING
    return sum(present)


def agg_avg(values: Iterable[object]) -> CellValue:
    present = _present(values)
    if not present:
        return MISSING
    return sum(present) / len(present)


def agg_min(values: Iterable[object]) -> CellValue:
    present = _present(values)
    if not present:
        return MISSING
    return min(present)


def agg_max(values: Iterable[object]) -> CellValue:
    present = _present(values)
    if not present:
        return MISSING
    return max(present)


def agg_count(values: Iterable[object]) -> CellValue:
    values = list(values)
    if not values:
        return MISSING
    return float(len(_present(values)))


AGGREGATORS: dict[str, Callable[[Iterable[object]], CellValue]] = {
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "count": agg_count,
}


def aggregate(name: str, values: Iterable[object]) -> CellValue:
    """Apply a named aggregator; raises :class:`RuleError` for unknown names."""
    try:
        func = AGGREGATORS[name]
    except KeyError:
        raise RuleError(
            f"unknown aggregator {name!r}; expected one of {sorted(AGGREGATORS)}"
        ) from None
    return func(values)
