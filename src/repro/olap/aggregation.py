"""Aggregation functions with ⊥ (MISSING) semantics.

The standard data-warehouse aggregates (sum, avg, min, max, count) are
special cases of the paper's rules (Sec. 2).  All of them skip MISSING
inputs; if every input is MISSING the result is MISSING.  ``count`` counts
non-missing inputs and returns 0 (a real number) when given some inputs but
none non-missing — except that an entirely empty scope is MISSING, matching
the convention that a cell with no descendant data does not exist.

Every aggregator is *streaming*: one pass over the input iterable with O(1)
state, so callers (notably the rollup index, which feeds generator scopes)
never pay for an intermediate list.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeAlias

from repro.errors import RuleError
from repro.olap.missing import MISSING, Missing, is_missing

__all__ = ["AGGREGATORS", "aggregate", "agg_sum", "agg_avg", "agg_min", "agg_max", "agg_count"]

Number = float
CellValue: TypeAlias = "Number | Missing"


def agg_sum(values: Iterable[object]) -> CellValue:
    total = 0.0
    count = 0
    for v in values:
        if is_missing(v):
            continue
        total += float(v)  # type: ignore[arg-type]
        count += 1
    if count == 0:
        return MISSING
    return total


def agg_avg(values: Iterable[object]) -> CellValue:
    total = 0.0
    count = 0
    for v in values:
        if is_missing(v):
            continue
        total += float(v)  # type: ignore[arg-type]
        count += 1
    if count == 0:
        return MISSING
    return total / count


def agg_min(values: Iterable[object]) -> CellValue:
    best: float | None = None
    for v in values:
        if is_missing(v):
            continue
        value = float(v)  # type: ignore[arg-type]
        if best is None or value < best:
            best = value
    if best is None:
        return MISSING
    return best


def agg_max(values: Iterable[object]) -> CellValue:
    best: float | None = None
    for v in values:
        if is_missing(v):
            continue
        value = float(v)  # type: ignore[arg-type]
        if best is None or value > best:
            best = value
    if best is None:
        return MISSING
    return best


def agg_count(values: Iterable[object]) -> CellValue:
    # Single pass: an empty input is ⊥, an input of only-⊥ cells counts 0.
    seen = 0
    present = 0
    for v in values:
        seen += 1
        if not is_missing(v):
            present += 1
    if seen == 0:
        return MISSING
    return float(present)


AGGREGATORS: dict[str, Callable[[Iterable[object]], CellValue]] = {
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "count": agg_count,
}


def aggregate(name: str, values: Iterable[object]) -> CellValue:
    """Apply a named aggregator; raises :class:`RuleError` for unknown names."""
    try:
        func = AGGREGATORS[name]
    except KeyError:
        raise RuleError(
            f"unknown aggregator {name!r}; expected one of {sorted(AGGREGATORS)}"
        ) from None
    return func(values)
