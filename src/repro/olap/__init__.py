"""The OLAP substrate: dimensions, member instances, cubes, and rules.

This subpackage plays the role of the Essbase engine in the paper: a
multidimensional data model with hierarchical dimensions, fundamental
support for changing dimensions (member instances with validity sets), ⊥
semantics for meaningless cells, and a rule engine for derived cells.
"""

from repro.olap.aggregation import AGGREGATORS, aggregate
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension, Member
from repro.olap.formula import parse_formula
from repro.olap.instances import MemberInstance, VaryingDimension
from repro.olap.missing import MISSING, Missing, is_missing
from repro.olap.rules import Rule, RuleEngine
from repro.olap.schema import CubeSchema

__all__ = [
    "AGGREGATORS",
    "aggregate",
    "Cube",
    "CubeSchema",
    "Dimension",
    "Member",
    "MemberInstance",
    "MISSING",
    "Missing",
    "is_missing",
    "parse_formula",
    "Rule",
    "RuleEngine",
    "VaryingDimension",
]
