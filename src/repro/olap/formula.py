"""A small arithmetic formula language for derived-cell rules.

The paper's rules (Sec. 2) include formulas such as::

    Margin = Sales - COGS
    Margin% = Margin / COGS * 100
    Margin = 0.93 * Sales - COGS        (scoped to Market = East)

This module parses the right-hand side into an expression tree of numbers,
member references, and the four arithmetic operators (plus unary minus and
parentheses).  Member names may be bare identifiers (``Sales``), bracketed
(``[Margin %]`` — allowing spaces and symbols), or quoted.

MISSING propagates through arithmetic: if any operand of an operator is ⊥,
the result is ⊥.  Division by zero also yields ⊥ (the cell is meaningless
rather than an error), matching OLAP-engine practice.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Callable, TypeAlias

from repro.errors import FormulaSyntaxError
from repro.olap.missing import MISSING, Missing, is_missing

__all__ = [
    "Expr",
    "Number",
    "MemberRef",
    "UnaryOp",
    "BinOp",
    "parse_formula",
    "format_expr",
]

CellValue: TypeAlias = "float | Missing"
Resolver = Callable[[str], object]


class Expr:
    """Base class for formula expression nodes."""

    def evaluate(self, resolve: Resolver) -> CellValue:
        raise NotImplementedError

    def member_refs(self) -> set[str]:
        """All member names referenced by the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Number(Expr):
    value: float

    def evaluate(self, resolve: Resolver) -> CellValue:
        return self.value

    def member_refs(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class MemberRef(Expr):
    name: str

    def evaluate(self, resolve: Resolver) -> CellValue:
        value = resolve(self.name)
        if is_missing(value):
            return MISSING
        return float(value)  # type: ignore[arg-type]

    def member_refs(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # only "-"
    operand: Expr

    def evaluate(self, resolve: Resolver) -> CellValue:
        value = self.operand.evaluate(resolve)
        if is_missing(value):
            return MISSING
        return -value  # type: ignore[operator]

    def member_refs(self) -> set[str]:
        return self.operand.member_refs()


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # one of + - * /
    left: Expr
    right: Expr

    def evaluate(self, resolve: Resolver) -> CellValue:
        left = self.left.evaluate(resolve)
        if is_missing(left):
            return MISSING
        right = self.right.evaluate(resolve)
        if is_missing(right):
            return MISSING
        if self.op == "+":
            return left + right  # type: ignore[operator]
        if self.op == "-":
            return left - right  # type: ignore[operator]
        if self.op == "*":
            return left * right  # type: ignore[operator]
        if right == 0:
            return MISSING
        return left / right  # type: ignore[operator]

    def member_refs(self) -> set[str]:
        return self.left.member_refs() | self.right.member_refs()


# -- tokenizer -----------------------------------------------------------------

_OPERATORS = set("+-*/()")


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    """Return (kind, value, position) tokens.

    Kinds: ``num``, ``name``, ``op``.
    """
    tokens: list[tuple[str, str, int]] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _OPERATORS:
            tokens.append(("op", ch, i))
            i += 1
            continue
        if ch == "[":
            end = text.find("]", i)
            if end < 0:
                raise FormulaSyntaxError("unterminated '[' member reference", i)
            tokens.append(("name", text[i + 1 : end].strip(), i))
            i = end + 1
            continue
        if ch in {'"', "'"}:
            end = text.find(ch, i + 1)
            if end < 0:
                raise FormulaSyntaxError("unterminated quoted member reference", i)
            tokens.append(("name", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            if i < n and text[i] in "eE":
                # Scientific notation: e / E, optional sign, digits.
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            literal = text[start:i]
            try:
                value = float(literal)
            except ValueError:
                raise FormulaSyntaxError(f"bad number literal {literal!r}", start) from None
            tokens.append(("num", repr(value), start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] in "_%"):
                i += 1
            tokens.append(("name", text[start:i], start))
            continue
        raise FormulaSyntaxError(f"unexpected character {ch!r}", i)
    return tokens


# -- parser -----------------------------------------------------------------------


class _Parser:
    """Recursive-descent parser: expr := term (('+'|'-') term)*;
    term := factor (('*'|'/') factor)*; factor := '-' factor | '(' expr ')'
    | number | member."""

    def __init__(self, tokens: list[tuple[str, str, int]], text: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._text = text

    def _peek(self) -> tuple[str, str, int] | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> tuple[str, str, int]:
        token = self._peek()
        if token is None:
            raise FormulaSyntaxError("unexpected end of formula", len(self._text))
        self._pos += 1
        return token

    def parse(self) -> Expr:
        expr = self._expr()
        leftover = self._peek()
        if leftover is not None:
            raise FormulaSyntaxError(
                f"unexpected token {leftover[1]!r}", leftover[2]
            )
        return expr

    def _expr(self) -> Expr:
        node = self._term()
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in "+-":
                return node
            self._next()
            node = BinOp(token[1], node, self._term())

    def _term(self) -> Expr:
        node = self._factor()
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in "*/":
                return node
            self._next()
            node = BinOp(token[1], node, self._factor())

    def _factor(self) -> Expr:
        kind, value, position = self._next()
        if kind == "op" and value == "-":
            return UnaryOp("-", self._factor())
        if kind == "op" and value == "(":
            node = self._expr()
            closing = self._next()
            if closing[:2] != ("op", ")"):
                raise FormulaSyntaxError("expected ')'", closing[2])
            return node
        if kind == "num":
            return Number(float(value))
        if kind == "name":
            return MemberRef(value)
        raise FormulaSyntaxError(f"unexpected token {value!r}", position)


def parse_formula(text: str) -> Expr:
    """Parse a formula right-hand side into an expression tree."""
    tokens = _tokenize(text)
    if not tokens:
        raise FormulaSyntaxError("empty formula")
    return _Parser(tokens, text).parse()


_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def format_expr(expr: Expr) -> str:
    """Serialise an expression back to formula text.

    ``parse_formula(format_expr(e))`` evaluates identically to ``e`` (the
    round trip is property-tested).  Member names are always bracketed so
    arbitrary names survive.
    """
    return _format(expr, parent_precedence=0, right_operand=False)


def _format(expr: Expr, parent_precedence: int, right_operand: bool) -> str:
    if isinstance(expr, Number):
        if expr.value < 0 or (expr.value == 0 and math.copysign(1, expr.value) < 0):
            # Render like a unary minus so formatting is a fixpoint.
            text = f"-{-expr.value!r}"
            return f"({text})" if parent_precedence >= 1 else text
        return repr(expr.value)
    if isinstance(expr, MemberRef):
        return f"[{expr.name}]"
    if isinstance(expr, UnaryOp):
        inner = _format(expr.operand, parent_precedence=3, right_operand=False)
        text = f"-{inner}"
        return f"({text})" if parent_precedence >= 1 else text
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE[expr.op]
        left = _format(expr.left, precedence, right_operand=False)
        # - and / are left-associative: a right operand at equal
        # precedence needs parentheses (a - (b - c)).
        right = _format(expr.right, precedence, right_operand=True)
        text = f"{left} {expr.op} {right}"
        needs_parens = precedence < parent_precedence or (
            right_operand and precedence == parent_precedence
        )
        return f"({text})" if needs_parens else text
    raise TypeError(f"cannot format {expr!r}")
