"""Member instances and varying dimensions (Sec. 2 and Def. 3.1).

A *varying dimension* is a dimension whose hierarchy changes as a function
of a *parameter dimension* (Def. 2.1) — e.g. Organization varying over Time.
Reclassifying a member under different parents at different moments creates
*member instances* (``FTE/Joe``, ``PTE/Joe``), each with a validity set: the
set of moments at which that root-to-leaf path held.

We model the varying structure as a per-moment parent assignment: for each
*managed* member (one that participates in changes) and each moment ``t`` of
the parameter dimension, either a parent member name or ``None`` (the member
is invalid — e.g. Joe on vacation in May).  Members never registered as
managed keep their static parent from the skeleton hierarchy and are valid
at every moment.  Instances are then derived by grouping moments with equal
root-to-member paths; per the paper, an instance that re-acquires an earlier
path is *the same* instance (its validity set simply gains those moments),
and validity sets of distinct instances of one member are always disjoint
by construction.

Legal changes (Def. 3.1) are applied with :meth:`VaryingDimension.reparent`:
"change d's parent from e to f at moment i" assigns parent f to every moment
``>= i`` at which d exists.  Arbitrary finite sequences of legal changes are
supported, as the definition requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.validity import ValiditySet
from repro.errors import InvalidChangeError, SchemaError
from repro.olap.dimension import Dimension, Member

__all__ = ["MemberInstance", "VaryingDimension"]


@dataclass(frozen=True)
class MemberInstance:
    """One instance of a member: a root-to-member path plus its validity set.

    ``path`` runs from the dimension root down to the member itself, e.g.
    ``("Organization", "FTE", "Joe")``.
    """

    member: str
    path: tuple[str, ...]
    validity: ValiditySet

    @property
    def qualified_name(self) -> str:
        """Short display name ``parent/member`` as used in the paper."""
        if len(self.path) >= 2:
            return f"{self.path[-2]}/{self.path[-1]}"
        return self.member

    @property
    def full_path(self) -> str:
        return "/".join(self.path)

    @property
    def parent_name(self) -> str | None:
        return self.path[-2] if len(self.path) >= 2 else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemberInstance({self.qualified_name!r}, "
            f"VS={self.validity.sorted_moments()})"
        )


class VaryingDimension:
    """A dimension whose hierarchy varies over a parameter dimension.

    Parameters
    ----------
    dimension:
        The skeleton hierarchy.  Non-leaf structure and the *default*
        parent of each member come from here.
    parameter:
        The parameter dimension driving the changes.  Its leaves are the
        "moments"; it may be ordered (Time) or unordered (Location).
    """

    def __init__(self, dimension: Dimension, parameter: Dimension) -> None:
        self.dimension = dimension
        self.parameter = parameter
        self._universe = parameter.leaf_count
        if self._universe == 0:
            raise SchemaError(
                f"parameter dimension {parameter.name!r} has no leaf members"
            )
        # member name -> per-moment parent name (None = invalid at that moment)
        self._parent_at: dict[str, list[str | None]] = {}
        self._version = 0
        self._instance_cache: tuple[int, dict[str, list[MemberInstance]]] | None = None

    # -- basic properties ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.dimension.name

    @property
    def universe(self) -> int:
        """Number of moments (leaves of the parameter dimension)."""
        return self._universe

    def moment_index(self, moment: str | int) -> int:
        """Normalise a moment given as leaf name or order index."""
        if isinstance(moment, int):
            if not 0 <= moment < self._universe:
                raise SchemaError(
                    f"moment index {moment} out of range [0, {self._universe})"
                )
            return moment
        return self.parameter.order_index(moment)

    def is_managed(self, member: str) -> bool:
        """Whether this member has a per-moment parent assignment."""
        return member in self._parent_at

    # -- mutation -------------------------------------------------------------

    def _managed_row(self, member: str) -> list[str | None]:
        member_obj = self.dimension.member(member)  # validates existence
        row = self._parent_at.get(member)
        if row is None:
            # Seed from the skeleton: valid everywhere under the static parent.
            parent = member_obj.parent
            default = parent.name if parent is not None else None
            row = [default] * self._universe
            self._parent_at[member] = row
        return row

    def _check_parent(self, parent: str) -> Member:
        parent_obj = self.dimension.member(parent)
        if parent_obj.is_leaf and parent_obj.children == ():
            # Def. 3.1 requires the new parent to be a non-leaf member.  A
            # skeleton member without children that is *intended* as a class
            # (e.g. an empty department) is still acceptable only if it is
            # not itself a managed leaf; we reject true leaves that carry
            # data of their own.
            if self.is_managed(parent):
                raise InvalidChangeError(
                    f"cannot reparent under {parent!r}: it is a leaf member"
                )
        return parent_obj

    def _touch(self) -> None:
        self._version += 1
        self._instance_cache = None

    def assign(
        self,
        member: str,
        parent: str,
        moments: Iterable[str | int] | None = None,
    ) -> None:
        """Set the parent of ``member`` for the given moments (default: all).

        This is the bulk-loading primitive; :meth:`reparent` is the
        Def. 3.1 legal-change primitive.
        """
        self._check_parent(parent)
        row = self._managed_row(member)
        if moments is None:
            for t in range(self._universe):
                row[t] = parent
        else:
            for moment in moments:
                row[self.moment_index(moment)] = parent
        self._touch()

    def set_invalid(self, member: str, moments: Iterable[str | int]) -> None:
        """Mark ``member`` invalid (no instance) at the given moments."""
        row = self._managed_row(member)
        for moment in moments:
            row[self.moment_index(moment)] = None
        self._touch()

    def reparent(self, member: str, new_parent: str, from_moment: str | int) -> None:
        """Apply a legal structural change (Def. 3.1).

        Changes ``member``'s parent to ``new_parent`` for every moment at or
        after ``from_moment`` at which the member exists.  Requires an
        ordered parameter dimension ("moments" in the sense of Sec. 3.1).
        """
        if not self.parameter.ordered:
            raise InvalidChangeError(
                "reparent() requires an ordered parameter dimension; use "
                "assign() with explicit moments for unordered parameters"
            )
        self._check_parent(new_parent)
        start = self.moment_index(from_moment)
        row = self._managed_row(member)
        for t in range(start, self._universe):
            if row[t] is not None:
                row[t] = new_parent
        self._touch()

    def assignments(self) -> dict[str, list[str | None]]:
        """Snapshot of the per-moment parent table (for persistence)."""
        return {name: list(row) for name, row in self._parent_at.items()}

    def load_assignments(
        self, table: "dict[str, list[str | None]]"
    ) -> None:
        """Restore a snapshot produced by :meth:`assignments`."""
        for member, row in table.items():
            self.dimension.member(member)  # validates existence
            if len(row) != self._universe:
                raise SchemaError(
                    f"assignment row for {member!r} has {len(row)} moments; "
                    f"parameter has {self._universe}"
                )
            for parent in row:
                if parent is not None:
                    self.dimension.member(parent)
        self._parent_at = {name: list(row) for name, row in table.items()}
        self._touch()

    def copy(self) -> "VaryingDimension":
        """Independent copy sharing the skeleton and parameter dimensions.

        Used to build *hypothetical* structures (positive scenarios) without
        disturbing the real one.
        """
        clone = VaryingDimension(self.dimension, self.parameter)
        clone._parent_at = {name: list(row) for name, row in self._parent_at.items()}
        return clone

    # -- structure queries ---------------------------------------------------

    def parent_at(self, member: str, moment: str | int) -> str | None:
        """Parent of ``member`` at a moment (``None`` if invalid there)."""
        t = self.moment_index(moment)
        row = self._parent_at.get(member)
        if row is not None:
            return row[t]
        parent = self.dimension.member(member).parent
        return parent.name if parent is not None else None

    def path_at(self, member: str, moment: str | int) -> tuple[str, ...] | None:
        """Root-to-member path at a moment, or ``None`` if invalid.

        Walks parent assignments upward, falling back to the skeleton for
        unmanaged ancestors, so reparenting a non-leaf member changes the
        root-to-leaf path of every leaf below it (as Def. 3.1 notes).
        """
        t = self.moment_index(moment)
        parts = [member]
        current = member
        seen = {member}
        root_name = self.dimension.root.name
        while current != root_name:
            parent = self.parent_at(current, t)
            if parent is None:
                return None
            if parent in seen:
                raise SchemaError(
                    f"cycle in varying hierarchy of {self.name!r} at moment "
                    f"{t}: {' -> '.join(parts)} -> {parent}"
                )
            parts.append(parent)
            seen.add(parent)
            current = parent
        return tuple(reversed(parts))

    # -- instances -------------------------------------------------------------

    def _instance_table(self) -> dict[str, list[MemberInstance]]:
        if self._instance_cache is not None and self._instance_cache[0] == self._version:
            return self._instance_cache[1]
        table: dict[str, list[MemberInstance]] = {}
        for member in self._parent_at:
            table[member] = self._compute_instances(member)
        self._instance_cache = (self._version, table)
        return table

    def _compute_instances(self, member: str) -> list[MemberInstance]:
        by_path: dict[tuple[str, ...], list[int]] = {}
        first_seen: dict[tuple[str, ...], int] = {}
        for t in range(self._universe):
            path = self.path_at(member, t)
            if path is None:
                continue
            by_path.setdefault(path, []).append(t)
            first_seen.setdefault(path, t)
        instances = [
            MemberInstance(member, path, ValiditySet(moments, self._universe))
            for path, moments in by_path.items()
        ]
        instances.sort(key=lambda inst: first_seen[inst.path])
        return instances

    def instances_of(self, member: str) -> list[MemberInstance]:
        """All instances of a member, ordered by first moment of validity.

        Instances are always derived from the per-moment root-to-member
        path, so a member with an unmanaged row but a *managed ancestor*
        (non-leaf reparenting, Def. 3.1) still gets the induced instances.
        A member with no managed ancestors yields its single static
        instance, valid at every moment.
        """
        table = self._instance_table()
        if member not in table:
            self.dimension.member(member)  # validate existence
            table[member] = self._compute_instances(member)
        return list(table[member])

    def instance_at(self, member: str, moment: str | int) -> MemberInstance | None:
        """The unique instance of ``member`` valid at a moment, if any.

        This is the paper's ``d_t``.
        """
        t = self.moment_index(moment)
        for instance in self.instances_of(member):
            if t in instance.validity:
                return instance
        return None

    def managed_members(self) -> list[str]:
        """Members with an explicit per-moment assignment, in insertion order."""
        return list(self._parent_at)

    def changing_members(self) -> list[str]:
        """Managed members with more than one instance (they actually change)."""
        return [m for m in self._parent_at if len(self.instances_of(m)) > 1]

    def all_instances(self) -> Iterator[MemberInstance]:
        """Instances of every managed member."""
        for member in self._parent_at:
            yield from self.instances_of(member)

    def find_instance(self, qualified_or_path: str) -> MemberInstance:
        """Look up an instance by qualified name (``FTE/Joe``) or full path."""
        for instance in self.all_instances():
            if qualified_or_path in (instance.qualified_name, instance.full_path):
                return instance
        raise SchemaError(
            f"no instance {qualified_or_path!r} in varying dimension {self.name!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VaryingDimension({self.name!r} over {self.parameter.name!r}, "
            f"{len(self._parent_at)} managed members)"
        )
