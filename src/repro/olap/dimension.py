"""Dimensions, members, and hierarchies.

A :class:`Dimension` organises :class:`Member` objects in a tree (the
dimension *hierarchy*).  Every dimension has an implicit root member carrying
the dimension's own name, mirroring the Essbase convention used by the paper
(e.g. the ``Organization`` dimension of Fig. 1 has root ``Organization`` with
children ``FTE``, ``PTE``, ``Contractor``).

Ordered dimensions (``ordered=True``) additionally expose a total order over
their *leaf* members — document order, i.e. the order in which leaves were
added.  The paper calls the leaves of an ordered parameter dimension
"moments"; :meth:`Dimension.order_index` maps a leaf name to its position in
that order.

Member names are unique within a dimension.  Reclassification of a member
under different parents over time is *not* modelled by mutating the
hierarchy; it is modelled by :mod:`repro.olap.instances`, which layers
member *instances* with validity sets on top of a static reference
hierarchy.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import DuplicateMemberError, MemberNotFoundError, SchemaError

__all__ = ["Member", "Dimension"]


class Member:
    """A node in a dimension hierarchy.

    Attributes are read via properties; the tree is mutated only through
    :class:`Dimension` methods so the dimension's indexes stay consistent.
    """

    __slots__ = ("_name", "_parent", "_children", "_dimension")

    def __init__(self, name: str, parent: "Member | None", dimension: "Dimension") -> None:
        self._name = name
        self._parent = parent
        self._children: list[Member] = []
        self._dimension = dimension

    @property
    def name(self) -> str:
        return self._name

    @property
    def parent(self) -> "Member | None":
        return self._parent

    @property
    def children(self) -> tuple["Member", ...]:
        return tuple(self._children)

    @property
    def dimension(self) -> "Dimension":
        return self._dimension

    @property
    def is_leaf(self) -> bool:
        return not self._children

    @property
    def is_root(self) -> bool:
        return self._parent is None

    @property
    def depth(self) -> int:
        """Distance from the root (the root has depth 0)."""
        node, depth = self, 0
        while node._parent is not None:
            node = node._parent
            depth += 1
        return depth

    @property
    def level(self) -> int:
        """Essbase-style level: 0 for leaves, 1 + max child level otherwise."""
        if self.is_leaf:
            return 0
        return 1 + max(child.level for child in self._children)

    def path(self) -> str:
        """Root-to-member path like ``Organization/FTE/Joe``."""
        parts: list[str] = []
        node: Member | None = self
        while node is not None:
            parts.append(node._name)
            node = node._parent
        return "/".join(reversed(parts))

    def ancestors(self) -> Iterator["Member"]:
        """Yield ancestors from parent up to (and including) the root."""
        node = self._parent
        while node is not None:
            yield node
            node = node._parent

    def descendants(self, include_self: bool = False) -> Iterator["Member"]:
        """Yield descendants in depth-first document order."""
        if include_self:
            yield self
        for child in self._children:
            yield child
            yield from child.descendants()

    def leaves(self) -> Iterator["Member"]:
        """Yield the leaf members below (or equal to) this member."""
        if self.is_leaf:
            yield self
            return
        for child in self._children:
            yield from child.leaves()

    def is_descendant_of(self, other: "Member") -> bool:
        return any(anc is other for anc in self.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Member({self.path()!r})"


class Dimension:
    """A dimension: a named member hierarchy, optionally ordered.

    Parameters
    ----------
    name:
        The dimension name; also the name of the implicit root member.
    ordered:
        Whether the leaf members carry a total order (required of parameter
        dimensions like Time in the paper's ordered case).
    is_measures:
        Marks the measures dimension; rules (see :mod:`repro.olap.rules`)
        resolve bare member references against the measures dimension.
    """

    def __init__(self, name: str, ordered: bool = False, is_measures: bool = False) -> None:
        if not name:
            raise SchemaError("dimension name must be non-empty")
        self.name = name
        self.ordered = ordered
        self.is_measures = is_measures
        self._root = Member(name, None, self)
        self._members: dict[str, Member] = {name: self._root}
        self._leaf_order: dict[str, int] | None = None  # lazily rebuilt

    # -- construction -----------------------------------------------------

    @property
    def root(self) -> Member:
        return self._root

    def add_member(self, name: str, parent: str | Member | None = None) -> Member:
        """Add a member under ``parent`` (default: the root) and return it."""
        if name in self._members:
            raise DuplicateMemberError(
                f"member {name!r} already exists in dimension {self.name!r}"
            )
        parent_member = self._root if parent is None else self._resolve(parent)
        member = Member(name, parent_member, self)
        parent_member._children.append(member)
        self._members[name] = member
        self._leaf_order = None
        return member

    def add_children(self, parent: str | Member | None, names: Iterable[str]) -> list[Member]:
        """Add several members under one parent; returns them in order."""
        return [self.add_member(name, parent) for name in names]

    # -- lookup -----------------------------------------------------------

    def _resolve(self, ref: str | Member) -> Member:
        if isinstance(ref, Member):
            if ref._dimension is not self:
                raise SchemaError(
                    f"member {ref.name!r} belongs to dimension "
                    f"{ref._dimension.name!r}, not {self.name!r}"
                )
            return ref
        member = self._members.get(ref)
        if member is None:
            raise MemberNotFoundError(self.name, ref)
        return member

    def member(self, name: str) -> Member:
        """Return the member with this name, raising if absent."""
        return self._resolve(name)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def members(self) -> Iterator[Member]:
        """All members (including the root) in depth-first document order."""
        yield from self._root.descendants(include_self=True)

    def leaf_members(self) -> list[Member]:
        """Leaf members in document order (== leaf order if ordered)."""
        return list(self._root.leaves())

    def members_at_level(self, level: int) -> list[Member]:
        """All members with the given Essbase-style level (0 = leaves)."""
        return [m for m in self.members() if m.level == level]

    def __len__(self) -> int:
        return len(self._members)

    # -- leaf ordering (for ordered / parameter dimensions) ---------------

    def _ensure_leaf_order(self) -> dict[str, int]:
        if self._leaf_order is None:
            self._leaf_order = {
                member.name: index for index, member in enumerate(self._root.leaves())
            }
        return self._leaf_order

    @property
    def leaf_count(self) -> int:
        return len(self._ensure_leaf_order())

    def order_index(self, name: str) -> int:
        """Position of a leaf member in the dimension's leaf order."""
        order = self._ensure_leaf_order()
        try:
            return order[name]
        except KeyError:
            member = self._resolve(name)  # raises MemberNotFoundError if absent
            raise SchemaError(
                f"member {member.name!r} of dimension {self.name!r} is not a leaf"
            ) from None

    def leaf_at(self, index: int) -> Member:
        """Leaf member at a given order position."""
        leaves = self.leaf_members()
        if not 0 <= index < len(leaves):
            raise SchemaError(
                f"leaf index {index} out of range for dimension {self.name!r} "
                f"({len(leaves)} leaves)"
            )
        return leaves[index]

    # -- convenience ------------------------------------------------------

    def select_members(self, predicate: Callable[[Member], bool]) -> list[Member]:
        """All members satisfying a predicate, in document order."""
        return [m for m in self.members() if predicate(m)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ordered " if self.ordered else ""
        return f"Dimension({self.name!r}, {kind}{len(self._members)} members)"
