"""Cube schemas: dimension line-up plus the varying-dimension registry.

A :class:`CubeSchema` fixes the ordered list of dimensions of a cube and
records which of them are *varying* (Def. 2.1), together with the
:class:`~repro.olap.instances.VaryingDimension` objects that carry their
per-moment structure.

Coordinate conventions
----------------------
A cell address is a tuple with one *coordinate* (a string) per dimension, in
schema order:

* **non-varying dimension** — the member name, at any hierarchy level;
* **varying dimension, leaf level** — the *member-instance full path*
  (``"Organization/FTE/Joe"``), because at leaf level the cube addresses
  instances, not members (Fig. 2 has three distinct rows for Joe);
* **varying dimension, non-leaf level** — the member name (``"FTE"``), an
  aggregate row.

``"/" in coordinate`` therefore distinguishes leaf instances from non-leaf
members on varying dimensions.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchemaError
from repro.olap.dimension import Dimension
from repro.olap.instances import MemberInstance, VaryingDimension

__all__ = ["CubeSchema"]

Address = tuple[str, ...]


class CubeSchema:
    """Ordered dimensions of a cube plus its varying-dimension registry."""

    def __init__(self, dimensions: Sequence[Dimension]) -> None:
        if not dimensions:
            raise SchemaError("a cube schema needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in schema: {names}")
        self.dimensions: tuple[Dimension, ...] = tuple(dimensions)
        self._index = {d.name: i for i, d in enumerate(self.dimensions)}
        self._varying: dict[str, VaryingDimension] = {}
        # Memoised rollup tests and ancestor chains.  These live on the
        # schema (not on individual cubes) so that copied cubes share them
        # safely: the verdicts depend only on the hierarchy and on which
        # dimensions are varying, and registering a new varying dimension
        # clears them (see :meth:`register_varying`).
        self._under_cache: dict[tuple[int, str, str], bool] = {}
        self._ancestor_cache: dict[tuple[int, str], tuple[str, ...]] = {}

    # -- registry ------------------------------------------------------------

    def register_varying(self, varying: VaryingDimension) -> VaryingDimension:
        """Declare one of the schema's dimensions as varying."""
        name = varying.dimension.name
        if name not in self._index:
            raise SchemaError(f"dimension {name!r} is not part of this schema")
        if varying.parameter.name not in self._index:
            raise SchemaError(
                f"parameter dimension {varying.parameter.name!r} of varying "
                f"dimension {name!r} is not part of this schema"
            )
        if self.dimensions[self._index[name]] is not varying.dimension:
            raise SchemaError(
                f"varying dimension object for {name!r} does not wrap the "
                "schema's dimension instance"
            )
        self._varying[name] = varying
        # Registering flips the dimension's coordinate semantics from
        # member-based to instance-path-based; cached verdicts computed
        # under the old semantics would be stale.
        self._under_cache.clear()
        self._ancestor_cache.clear()
        return varying

    def make_varying(self, dim_name: str, parameter_name: str) -> VaryingDimension:
        """Convenience: build + register a VaryingDimension from names."""
        varying = VaryingDimension(
            self.dimension(dim_name), self.dimension(parameter_name)
        )
        return self.register_varying(varying)

    @property
    def varying(self) -> dict[str, VaryingDimension]:
        return dict(self._varying)

    def varying_dimension(self, name: str) -> VaryingDimension:
        try:
            return self._varying[name]
        except KeyError:
            raise SchemaError(f"dimension {name!r} is not varying") from None

    def is_varying(self, name: str) -> bool:
        return name in self._varying

    # -- dimension access -------------------------------------------------------

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[self._index[name]]
        except KeyError:
            raise SchemaError(f"no dimension named {name!r} in schema") from None

    def dim_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no dimension named {name!r} in schema") from None

    def dim_names(self) -> list[str]:
        return [d.name for d in self.dimensions]

    @property
    def n_dims(self) -> int:
        return len(self.dimensions)

    def measures_dimension(self) -> Dimension | None:
        for dimension in self.dimensions:
            if dimension.is_measures:
                return dimension
        return None

    # -- addresses ------------------------------------------------------------

    def address(self, **coords: str) -> Address:
        """Build an address tuple from ``dim_name=coordinate`` keywords."""
        missing = [d.name for d in self.dimensions if d.name not in coords]
        if missing:
            raise SchemaError(f"address is missing coordinates for {missing}")
        extra = [name for name in coords if name not in self._index]
        if extra:
            raise SchemaError(f"address has unknown dimensions {extra}")
        return tuple(coords[d.name] for d in self.dimensions)

    def validate_address(self, address: Sequence[str]) -> Address:
        if len(address) != self.n_dims:
            raise SchemaError(
                f"address {address!r} has {len(address)} coordinates; "
                f"schema has {self.n_dims} dimensions"
            )
        return tuple(address)

    # -- coordinate semantics ------------------------------------------------

    def coordinate_is_leaf(self, dim_index: int, coord: str) -> bool:
        """Whether a coordinate addresses a leaf-level cell slot."""
        dimension = self.dimensions[dim_index]
        if dimension.name in self._varying:
            return "/" in coord
        return dimension.member(coord).is_leaf

    def is_leaf_address(self, address: Sequence[str]) -> bool:
        """A cell is leaf iff every coordinate is leaf level (Sec. 2)."""
        return all(
            self.coordinate_is_leaf(i, coord) for i, coord in enumerate(address)
        )

    def coordinate_display(self, dim_index: int, coord: str) -> str:
        """Short display form (``FTE/Joe`` for instance paths)."""
        if "/" in coord:
            parts = coord.split("/")
            return "/".join(parts[-2:])
        return coord

    def is_under(self, dim_index: int, leaf_coord: str, coord: str) -> bool:
        """Whether ``leaf_coord`` rolls up into ``coord`` on this dimension.

        ``coord`` may be the leaf coordinate itself, an ancestor member, or
        the dimension root.
        """
        if leaf_coord == coord:
            return True
        dimension = self.dimensions[dim_index]
        if dimension.name in self._varying:
            if "/" in coord:
                return False  # two distinct leaf instances never roll up
            # leaf_coord is an instance path; ancestors are its components.
            return coord in leaf_coord.split("/")[:-1]
        leaf_member = dimension.member(leaf_coord)
        ancestor = dimension.member(coord)
        return leaf_member.is_descendant_of(ancestor)

    def is_under_cached(self, dim_index: int, leaf_coord: str, coord: str) -> bool:
        """Memoised :meth:`is_under`; safe to share across cubes because the
        cache is cleared whenever the varying registry changes."""
        key = (dim_index, leaf_coord, coord)
        hit = self._under_cache.get(key)
        if hit is None:
            hit = self.is_under(dim_index, leaf_coord, coord)
            self._under_cache[key] = hit
        return hit

    def ancestor_chain(self, dim_index: int, leaf_coord: str) -> tuple[str, ...]:
        """All coordinates ``c`` with ``is_under(dim_index, leaf_coord, c)``:
        the leaf coordinate itself plus every ancestor up to the root.

        Memoised per (dimension, coordinate); this is the single-pass
        bucketing step of the rollup index.
        """
        key = (dim_index, leaf_coord)
        chain = self._ancestor_cache.get(key)
        if chain is None:
            dimension = self.dimensions[dim_index]
            if dimension.name in self._varying and "/" in leaf_coord:
                # Instance path: ancestors are its proper path prefixes'
                # member names (see :meth:`is_under`).
                parts = leaf_coord.split("/")
                chain = (leaf_coord, *parts[:-1])
            else:
                member = dimension.member(leaf_coord)
                chain = (leaf_coord, *(a.name for a in member.ancestors()))
            self._ancestor_cache[key] = chain
        return chain

    def leaf_coordinates_under(self, dim_index: int, coord: str) -> list[str]:
        """All leaf coordinates rolling up into ``coord`` on this dimension.

        For varying dimensions this enumerates member-instance paths whose
        path passes through ``coord`` (managed members) plus static paths of
        unmanaged leaf members below ``coord``.
        """
        dimension = self.dimensions[dim_index]
        if dimension.name not in self._varying:
            if self.coordinate_is_leaf(dim_index, coord):
                return [coord]
            return [m.name for m in dimension.member(coord).leaves()]
        varying = self._varying[dimension.name]
        if "/" in coord:
            return [coord]
        result: list[str] = []
        managed = set(varying.managed_members())
        for member in managed:
            for instance in varying.instances_of(member):
                if coord == instance.path[-1] or coord in instance.path[:-1]:
                    result.append(instance.full_path)
        for leaf in dimension.member(coord).leaves():
            if leaf.name in managed:
                continue
            (instance,) = varying.instances_of(leaf.name)
            result.append(instance.full_path)
        return result

    def instance_for_coordinate(
        self, dim_index: int, coord: str
    ) -> MemberInstance | None:
        """Resolve a varying-dimension leaf coordinate to its MemberInstance."""
        dimension = self.dimensions[dim_index]
        varying = self._varying.get(dimension.name)
        if varying is None or "/" not in coord:
            return None
        member = coord.split("/")[-1]
        for instance in varying.instances_of(member):
            if instance.full_path == coord:
                return instance
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for dimension in self.dimensions:
            suffix = "*" if dimension.name in self._varying else ""
            parts.append(dimension.name + suffix)
        return f"CubeSchema({', '.join(parts)})"
