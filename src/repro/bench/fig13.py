"""Fig. 13 — number of varying member instances vs query performance.

The paper runs a static 4-perspective query over employees with exactly 4
reporting-structure changes, growing the employee set from 50 to 250 in
steps of 50, and observes linear scaling: perspective query cost is driven
by (1) identifying the relevant member instances per perspective and (2)
merging instance rows across perspectives.

We reproduce the same sweep (scaled) over the chunked workforce cube.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentSeries, timed
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.storage.io_stats import IoCostModel
from repro.workload.workforce import WorkforceConfig, build_workforce

__all__ = ["fig13_config", "run_fig13"]


def fig13_config(n_changing: int = 50, seed: int = 42) -> WorkforceConfig:
    """Employees with exactly 4 moves, as in the paper's sweep."""
    return WorkforceConfig(
        n_employees=max(n_changing * 4, 40),
        n_departments=12,
        n_changing=n_changing,
        max_moves=4,
        exact_moves=4,
        n_accounts=4,
        n_scenarios=2,
        seed=seed,
        density=0.2,
    )


def run_fig13(
    steps: Sequence[int] = (10, 20, 30, 40, 50),
    config: WorkforceConfig | None = None,
    cost_model: IoCostModel | None = None,
) -> list[ExperimentSeries]:
    """Regenerate Fig. 13 (scaled): #varying employees vs query time.

    ``steps`` are the employee-set sizes; the paper's 50..250 maps to our
    scaled 10..50 by default (same 5-point linear sweep).
    """
    config = config or fig13_config(n_changing=max(steps))
    if config.n_changing < max(steps):
        raise ValueError(
            f"config has {config.n_changing} changing employees; "
            f"steps need {max(steps)}"
        )
    workforce = build_workforce(config)
    # Small row-chunks: each additional employee touches fresh chunks, so
    # the sweep isolates the per-instance merge cost (as in the paper,
    # where 250 employees are a drop in a 121M-cell cube).
    chunked, spec = workforce.chunked(
        chunk_shape=(
            4,
            3,
            config.n_accounts,
            config.n_scenarios,
            1,
            1,
            1,
        ),
        cost_model=cost_model,
    )
    pset = PerspectiveSet([0, 3, 6, 9], 12)  # Jan, Apr, Jul, Oct

    series = ExperimentSeries("Static, 4 perspectives")
    for n in steps:
        members = workforce.changing_employees[:n]
        chunked.store.reset_stats()
        result, wall = timed(
            lambda: run_perspective_query(
                spec, members, pset, Semantics.STATIC
            )
        )
        stats = chunked.store.stats.snapshot()
        series.add(
            n,
            wall_ms=wall,
            simulated_ms=stats["simulated_ms"],
            chunk_reads=stats["chunk_reads"],
            instances=float(len(result.rows)),
        )
    return [series]
