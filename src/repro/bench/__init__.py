"""Benchmark harness: one runner per paper figure plus ablations.

``python -m repro.bench <fig11|fig12|fig13|ablations|all>`` prints the
regenerated series as text tables (see EXPERIMENTS.md for the comparison
against the paper's reported shapes).
"""

from repro.bench.ablations import (
    run_cube_compute_ablation,
    run_dimension_order_ablation,
    run_optimizer_ablation,
    run_pebbling_ablation,
)
from repro.bench.fig11 import bench_config, run_fig11, spread_perspectives
from repro.bench.fig12 import fig12_config, fig12_cost_model, run_fig12
from repro.bench.fig13 import fig13_config, run_fig13
from repro.bench.harness import (
    ExperimentSeries,
    SeriesPoint,
    format_table,
    print_series,
    timed,
)

__all__ = [
    "run_cube_compute_ablation",
    "run_dimension_order_ablation",
    "run_optimizer_ablation",
    "run_pebbling_ablation",
    "bench_config",
    "run_fig11",
    "spread_perspectives",
    "fig12_config",
    "fig12_cost_model",
    "run_fig12",
    "fig13_config",
    "run_fig13",
    "ExperimentSeries",
    "SeriesPoint",
    "format_table",
    "print_series",
    "timed",
]
