"""Query-throughput benchmark: the perf engine vs the naive evaluator.

The workload is the Fig. 11/12 *shape* — many MDX queries against one
what-if scenario — at semantic-cube scale: a workforce warehouse with
>= 10k leaf cells and result grids of >= 100 derived (department-level)
cells.  Every query carries the same ``WITH PERSPECTIVE`` clause, so the
scenario-cube cache should pay off from the second query on, and every
derived cell exercises the rollup index.

Two passes over the identical query list are timed:

* **naive** — ``repro.perf.naive_mode()``: per-query ``scenario.apply``
  plus one full leaf scan per derived cell (the pre-engine code path);
* **engine** — rollup index + scenario cache + batched grid evaluation.

Both passes must produce bit-identical cell grids (checked before any
timing); the speedup is the ratio of mean per-query wall times.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.perf.config import naive_mode
from repro.workload.workforce import WorkforceConfig, build_workforce

__all__ = [
    "QueryEngineConfig",
    "full_config",
    "smoke_config",
    "load_history",
    "measure_tracing_overhead",
    "run_query_engine",
    "render_report",
    "write_baseline",
]


@dataclass(frozen=True)
class QueryEngineConfig:
    """Scale and repetition knobs for the throughput benchmark."""

    n_employees: int = 120
    n_departments: int = 8
    n_accounts: int = 6
    density: float = 1.0
    seed: int = 42
    #: timed repetitions of the full query list per mode (one untimed
    #: warmup pass precedes each, so both modes are measured warm)
    naive_repeats: int = 2
    engine_repeats: int = 10


def full_config() -> QueryEngineConfig:
    """Acceptance-scale run: >= 10k leaf cells."""
    return QueryEngineConfig()


def smoke_config() -> QueryEngineConfig:
    """CI-sized run: small cube, enough to catch a regression."""
    return QueryEngineConfig(
        n_employees=24,
        n_departments=4,
        n_accounts=3,
        naive_repeats=3,
        engine_repeats=3,
    )


def _build_queries(cube_name: str) -> list[str]:
    """Same scenario, three grids — the repeated-scenario workload."""
    scenario = "WITH PERSPECTIVE {(Jan), (Jul)} FOR Department STATIC"
    return [
        f"""
        {scenario}
        SELECT {{Period.Members}} ON COLUMNS,
               {{CrossJoin({{Department.Children}}, {{Scenario.Children}})}} ON ROWS
        FROM {cube_name}
        """,
        f"""
        {scenario}
        SELECT {{Period.Members}} ON COLUMNS,
               {{CrossJoin({{Department.Children}}, {{Account.Members}})}} ON ROWS
        FROM {cube_name}
        """,
        f"""
        {scenario}
        SELECT {{Account.Members}} ON COLUMNS,
               {{CrossJoin({{Department.Children}}, {{Period.Children}})}} ON ROWS
        FROM {cube_name}
        """,
    ]


def _run_all(warehouse, queries: list[str]) -> list:
    return [warehouse.query(text) for text in queries]


def _time_pass(warehouse, queries: list[str], repeats: int) -> float:
    """Mean wall milliseconds per query over ``repeats`` timed passes.

    No separate warmup: the correctness gate has already run the full
    query list once in each mode, so both measurements start warm."""
    start = time.perf_counter()
    for _ in range(repeats):
        _run_all(warehouse, queries)
    elapsed = time.perf_counter() - start
    return elapsed * 1000.0 / (repeats * len(queries))


def run_query_engine(config: QueryEngineConfig | None = None) -> dict:
    """Run the benchmark; returns the JSON-ready report dict."""
    config = config or full_config()
    workforce = build_workforce(
        WorkforceConfig(
            n_employees=config.n_employees,
            n_departments=config.n_departments,
            n_accounts=config.n_accounts,
            density=config.density,
            seed=config.seed,
        )
    )
    warehouse = workforce.warehouse
    queries = _build_queries(warehouse.name)

    # -- correctness gate: engine and naive grids must be bit-identical ----
    engine_results = _run_all(warehouse, queries)
    with naive_mode():
        naive_results = _run_all(warehouse, queries)
    identical = all(
        e.cells == n.cells and e.row_labels() == n.row_labels()
        for e, n in zip(engine_results, naive_results)
    )
    if not identical:
        raise AssertionError(
            "engine and naive evaluation disagree — benchmark aborted"
        )
    # Every result cell sits at a department (non-leaf) coordinate, so the
    # whole grid is derived cells.
    derived_cells = sum(
        len(r.rows) * len(r.columns) for r in engine_results
    ) // len(engine_results)

    with naive_mode():
        naive_ms = _time_pass(warehouse, queries, config.naive_repeats)
    engine_ms = _time_pass(warehouse, queries, config.engine_repeats)

    cache_stats = warehouse.scenario_cache.stats.snapshot()
    index_stats = (
        warehouse.cube._rollup_index.stats.snapshot()
        if warehouse.cube.has_rollup_index
        else {}
    )
    # Headline throughput: derived result cells served per second — each
    # is one (memoised or vectorized) rollup over the leaf planes.
    cells_per_second = (
        round(derived_cells * 1000.0 / engine_ms, 1) if engine_ms else 0.0
    )
    return {
        "benchmark": "query_engine",
        "config": {
            "n_employees": config.n_employees,
            "n_departments": config.n_departments,
            "n_accounts": config.n_accounts,
            "density": config.density,
            "naive_repeats": config.naive_repeats,
            "engine_repeats": config.engine_repeats,
        },
        "leaf_cells": warehouse.cube.n_leaf_cells,
        "queries": len(queries),
        "derived_result_cells_per_query": derived_cells,
        "naive_ms_per_query": round(naive_ms, 3),
        "engine_ms_per_query": round(engine_ms, 3),
        "cells_aggregated_per_second": cells_per_second,
        "speedup": round(naive_ms / engine_ms, 2) if engine_ms else float("inf"),
        "identical": identical,
        "scenario_cache": cache_stats,
        "rollup_index": index_stats,
    }


def _best_pass_ms(warehouse, queries: list[str], repeats: int) -> float:
    """Best (minimum) wall milliseconds per query over ``repeats`` timed
    passes — min is robust to scheduler noise, which matters when the
    quantity under test is a few percent of overhead."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _run_all(warehouse, queries)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0 / len(queries)


def measure_tracing_overhead(config: QueryEngineConfig | None = None) -> dict:
    """Time the engine query pass with tracing disabled vs enabled.

    The observability layer's contract is that *disabled* tracing is free
    (one attribute read + a shared no-op context manager per site) and
    *enabled* tracing costs a few percent at most.  Returns a JSON-ready
    report with both figures, the overhead ratio, and a bit-identity flag
    (tracing must never change results).
    """
    from repro.obs.trace import tracing

    config = config or smoke_config()
    workforce = build_workforce(
        WorkforceConfig(
            n_employees=config.n_employees,
            n_departments=config.n_departments,
            n_accounts=config.n_accounts,
            density=config.density,
            seed=config.seed,
        )
    )
    warehouse = workforce.warehouse
    queries = _build_queries(warehouse.name)

    # Warm both paths (index build, scenario cache, lazy imports), then
    # check tracing changes nothing about the cells.
    disabled_results = _run_all(warehouse, queries)
    with tracing():
        enabled_results = _run_all(warehouse, queries)
    identical = all(
        d.cells == e.cells and d.row_labels() == e.row_labels()
        for d, e in zip(disabled_results, enabled_results)
    )
    profiled = all(r.profile is not None for r in enabled_results)

    disabled_ms = _best_pass_ms(warehouse, queries, config.engine_repeats)
    with tracing():
        enabled_ms = _best_pass_ms(warehouse, queries, config.engine_repeats)

    return {
        "benchmark": "tracing_overhead",
        "queries": len(queries),
        "repeats": config.engine_repeats,
        "disabled_ms_per_query": round(disabled_ms, 4),
        "enabled_ms_per_query": round(enabled_ms, 4),
        "overhead_ratio": (
            round(enabled_ms / disabled_ms, 4) if disabled_ms else 1.0
        ),
        "identical": identical,
        "profiled": profiled,
    }


def render_report(report: dict) -> str:
    rows = [
        ("leaf cells", report["leaf_cells"]),
        ("derived cells/query", report["derived_result_cells_per_query"]),
        ("naive ms/query", report["naive_ms_per_query"]),
        ("engine ms/query", report["engine_ms_per_query"]),
        ("cells agg'd/sec", report.get("cells_aggregated_per_second", "-")),
        ("speedup", f'{report["speedup"]}x'),
        ("bit-identical", report["identical"]),
    ]
    return format_table(
        "Query-throughput engine vs naive evaluator",
        ["metric", "value"],
        rows,
        width=22,
    )


def load_history(path: str = "BENCH_query_engine.json") -> list[dict]:
    """The recorded benchmark trajectory, oldest entry first.

    Understands both file layouts: the current ``{"history": [...]}``
    shape and the original single-report file (returned as a one-entry
    history, so the seed measurement is never lost).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return [entry for entry in data["history"] if isinstance(entry, dict)]
    if isinstance(data, dict):
        return [data]
    return []


def write_baseline(report: dict, path: str = "BENCH_query_engine.json") -> None:
    """Append ``report`` as a dated entry to the benchmark history file.

    The file is the perf trajectory: every run adds a record instead of
    overwriting, and a pre-history flat file is migrated in place as the
    first entry (preserving the seed measurement's figures).
    """
    history = load_history(path)
    entry = dict(report)
    entry.setdefault(
        "recorded_at", time.strftime("%Y-%m-%d", time.gmtime())
    )
    history.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"benchmark": "query_engine", "history": history},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
