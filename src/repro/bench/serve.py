"""Sharded-serving benchmark: scatter-gather throughput vs shard count.

Measures the multi-process tier end to end: one
:class:`~repro.service.ShardedQueryService` per shard count, a small
client pool driving distinct-fingerprint ``PERSPECTIVE`` queries over
the workforce workload, wall-clock per configuration.  Distinct
fingerprints matter — every query pays a **cold** scenario apply, the
dominant cost, and each shard applies the scenario over only its owned
1/N of the leaf data, which is exactly the work the tier parallelises.

Every sharded grid is verified bit-identical (``repr`` equality on the
cell matrix) against single-process ``Warehouse.query`` evaluation of
the same text; a disagreement aborts the benchmark.  The report also
asserts that the owned-cell fraction stays above
:data:`OWNED_FRACTION_FLOOR` so the benchmark cannot silently degrade
into measuring the coordinator's local fallback path.
"""

from __future__ import annotations

import itertools
import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench.harness import format_table
from repro.olap.missing import is_missing
from repro.service import ShardedQueryService
from repro.workload.workforce import MONTHS, WorkforceConfig, build_workforce

__all__ = [
    "OWNED_FRACTION_FLOOR",
    "build_queries",
    "full_config",
    "load_history",
    "render_report",
    "run_serve_bench",
    "smoke_config",
    "write_baseline",
]

#: at least this fraction of evaluated cells must have been executed on
#: shard processes (vs the coordinator's local path) for the run to count
OWNED_FRACTION_FLOOR = 0.9

_SEMANTICS = ("STATIC", "DYNAMIC FORWARD", "DYNAMIC BACKWARD")


def smoke_config() -> dict:
    """CI-sized: small cube, 1-vs-2 shards, identity checks only."""
    return {
        "workload": {
            "n_employees": 60,
            "n_departments": 6,
            "n_changing": 8,
            "max_moves": 3,
            "n_accounts": 3,
            "seed": 42,
        },
        "n_queries": 6,
        "shard_counts": (1, 2),
        "chunk": 2,
        "client_threads": 4,
        "employees_per_query": 6,
    }


def full_config() -> dict:
    """The committed-baseline scale: 1/2/4 shards over a ~100k-leaf cube.

    Accounts are scaled up rather than employees: per-query coordinator
    overhead (axis resolution over the member registry) grows with the
    member count, while the shard-side cold scenario apply grows with
    leaf cells — paper-style wide measure sets keep the benchmark
    dominated by the work the shards actually parallelise.
    """
    return {
        "workload": {
            "n_employees": 400,
            "n_departments": 10,
            "n_changing": 40,
            "max_moves": 4,
            "n_accounts": 10,
            "seed": 42,
        },
        "n_queries": 24,
        "shard_counts": (1, 2, 4),
        "chunk": 4,
        "client_threads": 4,
        "employees_per_query": 12,
    }


def build_queries(workforce, n_queries: int, employees_per_query: int) -> list[str]:
    """Distinct-fingerprint perspective queries with department locality.

    Query ``i`` rotates the perspective months, the change semantics, and
    the slicer account — so no two queries share a scenario-cache
    fingerprint and every one pays a cold apply — while its rows are
    employees of **one** department.  That locality is the workload the
    sharded tier is built for: the planner keeps a department's slots
    (and, via merge-graph co-residency, every member whose instances
    touch them) on one shard, so a department-scoped query lands on a
    single shard and its cold scenario apply covers only that shard's
    owned fraction of the leaf data instead of the whole cube.
    """
    by_department: dict[str, list[str]] = {}
    for member in workforce.schema.dimension("Department").leaf_members():
        by_department.setdefault(member.parent.name, []).append(member.name)
    departments = sorted(by_department)
    # distinct perspective-month triples: distinct scenario fingerprints,
    # so every query pays a cold apply (warm-cache hits would flatter the
    # single-shard baseline and the sharded runs unevenly)
    month_sets = list(itertools.combinations(MONTHS, 3))
    queries: list[str] = []
    months = ", ".join(f"Period.[{m}]" for m in MONTHS)
    for i in range(n_queries):
        moments = sorted(month_sets[(i * 13) % len(month_sets)], key=MONTHS.index)
        points = ", ".join(f"({m})" for m in moments)
        semantics = _SEMANTICS[i % len(_SEMANTICS)]
        account = workforce.accounts[i % len(workforce.accounts)]
        rows = by_department[departments[i % len(departments)]]
        rows = rows[(i // len(departments)) % 2 :][:employees_per_query]
        row_set = ", ".join(f"[{name}]" for name in dict.fromkeys(rows))
        queries.append(
            f"WITH PERSPECTIVE {{{points}}} FOR Department {semantics}\n"
            f"SELECT {{{months}}} ON COLUMNS,\n"
            f"       {{{row_set}}} ON ROWS\n"
            f"FROM [App].[Db]\n"
            f"WHERE ([{account}], [Current], [Local], [BU Version_1],\n"
            f"       [HSP_InputValue])"
        )
    return queries


def _grid_repr(result) -> str:
    return repr(
        [
            [None if is_missing(v) else v for v in row]
            for row in result.cells
        ]
    )


def run_serve_bench(config: dict) -> dict:
    """Run every shard count in ``config`` and return the report dict."""
    workload_config = WorkforceConfig(**config["workload"])
    workforce = build_workforce(workload_config)
    queries = build_queries(
        workforce, config["n_queries"], config["employees_per_query"]
    )
    workload_params = tuple(sorted(config["workload"].items()))

    # single-process reference grids (and the local baseline timing)
    local_started = time.perf_counter()
    reference = [_grid_repr(workforce.warehouse.query(text)) for text in queries]
    local_s = time.perf_counter() - local_started

    per_shard: dict[str, dict] = {}
    identical = True
    for n_shards in config["shard_counts"]:
        service = ShardedQueryService(
            "workforce",
            n_shards=n_shards,
            chunk=config["chunk"],
            workload_params=workload_params,
        )
        try:
            # warm-up: parse cache + one scenario fingerprint per shard
            service.execute(queries[0])
            owned = spanning = local_cells = shards_touched = 0
            started = time.perf_counter()
            with ThreadPoolExecutor(config["client_threads"]) as pool:
                results = list(pool.map(service.execute, queries))
            wall_s = time.perf_counter() - started
            for text, result, expected in zip(queries, results, reference):
                if _grid_repr(result) != expected:
                    identical = False
                owned += result.stats.get("owned_cells", 0)
                spanning += result.stats.get("spanning_cells", 0)
                local_cells += result.stats.get("local_cells", 0)
                shards_touched += len(
                    {
                        service.plan.shard_of_coordinate(row.coordinates[0][1])
                        for row in result.rows
                    }
                    - {None}
                )
        finally:
            service.close()
        evaluated = owned + spanning + local_cells
        per_shard[str(n_shards)] = {
            "wall_s": round(wall_s, 4),
            "queries_per_second": round(len(queries) / wall_s, 3),
            "ms_per_query": round(wall_s * 1000.0 / len(queries), 3),
            "owned_cells": owned,
            "spanning_cells": spanning,
            "local_cells": local_cells,
            "owned_fraction": round(owned / evaluated, 4) if evaluated else 0.0,
            "avg_shards_touched": round(shards_touched / len(queries), 2),
        }

    baseline = per_shard[str(config["shard_counts"][0])]
    report: dict = {
        "benchmark": "serve",
        "config": {
            key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.items()
        },
        "leaf_cells": workforce.cube.n_leaf_cells,
        "queries": len(queries),
        "client_threads": config["client_threads"],
        "local_ms_per_query": round(local_s * 1000.0 / len(queries), 3),
        "shards": per_shard,
        "identical": identical,
    }
    for n_shards in config["shard_counts"][1:]:
        speedup = (
            per_shard[str(n_shards)]["queries_per_second"]
            / baseline["queries_per_second"]
        )
        report[f"speedup_at_{n_shards}"] = round(speedup, 3)
    return report


def render_report(report: dict) -> str:
    rows = [
        ("leaf cells", report["leaf_cells"]),
        ("queries", report["queries"]),
        ("client threads", report["client_threads"]),
        ("local ms/query", report["local_ms_per_query"]),
    ]
    for n_shards, stats in report["shards"].items():
        rows.append(
            (
                f"{n_shards} shard(s)",
                f'{stats["queries_per_second"]} q/s '
                f'({stats["ms_per_query"]} ms/q, '
                f'owned {stats["owned_fraction"]:.0%}, '
                f'{stats["avg_shards_touched"]} shard(s)/q)',
            )
        )
    for key in sorted(report):
        if key.startswith("speedup_at_"):
            rows.append((key.replace("_", " "), f"{report[key]}x"))
    rows.append(("bit-identical", report["identical"]))
    return format_table(
        "Sharded serving scatter-gather throughput",
        ["metric", "value"],
        rows,
        width=34,
    )


def load_history(path: str = "BENCH_serve.json") -> list[dict]:
    """The recorded benchmark trajectory, oldest entry first."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return [entry for entry in data["history"] if isinstance(entry, dict)]
    if isinstance(data, dict):
        return [data]
    return []


def write_baseline(report: dict, path: str = "BENCH_serve.json") -> None:
    """Append ``report`` as a dated entry to the benchmark history file."""
    history = load_history(path)
    entry = dict(report)
    entry.setdefault("recorded_at", time.strftime("%Y-%m-%d", time.gmtime()))
    history.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"benchmark": "serve", "history": history},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
