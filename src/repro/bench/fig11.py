"""Fig. 11 — number of perspectives vs query performance.

The paper runs a query over all 250 changing employees, varying the number
of perspectives from 1 to 12, for three strategies:

* **Multiple MDX** — simulate the k-perspective query as k
  single-perspective queries plus post-merge (upper bound);
* **Static** — direct multi-perspective static semantics;
* **Dynamic Forward** — direct multi-perspective forward semantics.

All three scale linearly; the direct implementations beat the simulation,
and static/forward converge beyond ~6 perspectives (the ranges shrink).
We reproduce the same three lines over the scaled workforce cube, reporting
wall-clock ms, simulated disk ms, and chunks read.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentSeries, timed
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import (
    run_multiple_mdx_simulation,
    run_perspective_query,
)
from repro.storage.io_stats import IoCostModel
from repro.workload.workforce import WorkforceConfig, build_workforce

__all__ = ["bench_config", "spread_perspectives", "run_fig11"]


def bench_config(scale: float = 1.0, seed: int = 42) -> WorkforceConfig:
    """Default Fig. 11/13 workload: 1% of employees change, as in Sec. 6."""
    return WorkforceConfig(
        n_employees=max(40, int(400 * scale)),
        n_departments=max(4, int(16 * scale)),
        n_changing=max(8, int(40 * scale)),
        max_moves=4,
        n_accounts=max(2, int(6 * scale)),
        n_scenarios=2,
        seed=seed,
        density=0.25,
    )


def spread_perspectives(k: int, universe: int = 12) -> list[int]:
    """k perspective moments spread evenly over the year."""
    if not 1 <= k <= universe:
        raise ValueError(f"k must be within [1, {universe}]")
    return sorted({(i * universe) // k for i in range(k)})


def run_fig11(
    config: WorkforceConfig | None = None,
    perspective_counts: Sequence[int] = tuple(range(1, 13)),
    cost_model: IoCostModel | None = None,
) -> list[ExperimentSeries]:
    """Regenerate the three lines of Fig. 11."""
    workforce = build_workforce(config or bench_config())
    chunked, spec = workforce.chunked(cost_model=cost_model)
    members = workforce.changing_employees

    multiple_mdx = ExperimentSeries("Multiple MDX")
    static = ExperimentSeries("Static")
    forward = ExperimentSeries("Dynamic Forward")

    for k in perspective_counts:
        pset = PerspectiveSet(spread_perspectives(k), 12)

        chunked.store.reset_stats()
        _, wall = timed(
            lambda: run_multiple_mdx_simulation(
                spec, members, pset, Semantics.STATIC
            )
        )
        stats = chunked.store.stats.snapshot()
        multiple_mdx.add(
            k,
            wall_ms=wall,
            simulated_ms=stats["simulated_ms"],
            chunk_reads=stats["chunk_reads"],
        )

        chunked.store.reset_stats()
        _, wall = timed(
            lambda: run_perspective_query(spec, members, pset, Semantics.STATIC)
        )
        stats = chunked.store.stats.snapshot()
        static.add(
            k,
            wall_ms=wall,
            simulated_ms=stats["simulated_ms"],
            chunk_reads=stats["chunk_reads"],
        )

        chunked.store.reset_stats()
        _, wall = timed(
            lambda: run_perspective_query(spec, members, pset, Semantics.FORWARD)
        )
        stats = chunked.store.stats.snapshot()
        forward.add(
            k,
            wall_ms=wall,
            simulated_ms=stats["simulated_ms"],
            chunk_reads=stats["chunk_reads"],
        )

    return [multiple_mdx, static, forward]
