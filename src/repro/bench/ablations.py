"""Ablation experiments for the design choices of Sec. 5.

Two knobs the paper argues for, measured head-to-head:

* **Pebbling** (Sec. 5.2): chunk-read order from the pebbling heuristic vs
  the naive linear scan order — metric: chunks co-resident (pebbles).
* **Dimension order** (Lemma 5.1): varying dimension first vs last in the
  chunk scan order — metric: merge-induced memory requirement.

Plus the Zhao-baseline comparison: shared single-scan simultaneous
aggregation vs one scan per group-by — metric: chunk reads.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentSeries
from repro.core.dimension_order import memory_for_dimension_order
from repro.core.merge_graph import build_merge_graph
from repro.core.pebbling import pebble, pebbles_for_order
from repro.core.perspective import PerspectiveSet, Semantics
from repro.storage.cube_compute import compute_group_bys, compute_group_bys_naive
from repro.storage.lattice import all_group_bys
from repro.workload.retail import RetailConfig, build_retail

__all__ = [
    "run_pebbling_ablation",
    "run_dimension_order_ablation",
    "run_cube_compute_ablation",
    "run_optimizer_ablation",
]


def _retail_graph(n_varying: int, seed: int, chunk_rows: int = 1):
    retail = build_retail(
        RetailConfig(
            n_groups=6,
            products_per_group=4,
            n_varying=n_varying,
            max_moves=3,
            n_locations=2,
            seed=seed,
        )
    )
    chunked, spec = retail.chunked(chunk_shape=(chunk_rows, 3, 2))
    pset = PerspectiveSet([0, 6], 12)
    graph = build_merge_graph(spec, pset, Semantics.FORWARD)
    return graph, chunked.grid


def run_pebbling_ablation(
    varying_counts: Sequence[int] = (2, 4, 6, 8),
    seed: int = 17,
) -> list[ExperimentSeries]:
    """Pebbles needed: heuristic order vs naive linear order."""
    heuristic = ExperimentSeries("Pebbling heuristic")
    naive = ExperimentSeries("Naive scan order")
    for n in varying_counts:
        graph, grid = _retail_graph(n, seed)
        if graph.number_of_nodes() == 0:
            heuristic.add(n, pebbles=0)
            naive.add(n, pebbles=0)
            continue
        result = pebble(graph)
        scan = sorted(
            graph.nodes, key=lambda c: grid.linear_index(c, grid.default_order())
        )
        heuristic.add(n, pebbles=result.max_pebbles)
        naive.add(n, pebbles=pebbles_for_order(graph, scan))
    return [heuristic, naive]


def run_dimension_order_ablation(
    varying_counts: Sequence[int] = (2, 4, 6, 8),
    seed: int = 17,
) -> list[ExperimentSeries]:
    """Lemma 5.1: memory with the varying dimension first vs last."""
    first = ExperimentSeries("Varying dim first")
    last = ExperimentSeries("Varying dim last")
    for n in varying_counts:
        graph, grid = _retail_graph(n, seed)
        first.add(
            n, memory_chunks=memory_for_dimension_order(graph, grid, (0, 1, 2))
        )
        last.add(
            n, memory_chunks=memory_for_dimension_order(graph, grid, (1, 2, 0))
        )
    return [first, last]


def run_optimizer_ablation(
    member_counts: Sequence[int] = (2, 5, 10),
    seed: int = 31,
) -> list[ExperimentSeries]:
    """Sec. 8 future work: selection pushdown through a perspective.

    Times a Select-over-Perspective plan with and without optimisation on
    the workforce cube; the optimised plan relocates only the selected
    members' cells.
    """
    from repro.bench.harness import timed
    from repro.core.optimizer import optimize
    from repro.core.plans import (
        BaseCube,
        MemberIn,
        PerspectiveNode,
        SelectNode,
        execute_plan,
    )
    from repro.workload.workforce import WorkforceConfig, build_workforce

    workforce = build_workforce(
        WorkforceConfig(
            n_employees=200,
            n_departments=10,
            n_changing=20,
            n_accounts=4,
            n_scenarios=2,
            seed=seed,
        )
    )
    original = ExperimentSeries("Unoptimised plan")
    optimized = ExperimentSeries("Optimised plan")
    for n in member_counts:
        members = frozenset(workforce.changing_employees[:n])
        plan = SelectNode(
            PerspectiveNode(BaseCube(), "Department", (0,), Semantics.FORWARD),
            "Department",
            MemberIn(members),
        )
        rewritten, _ = optimize(plan)
        __, wall_original = timed(lambda: execute_plan(plan, workforce.cube))
        __, wall_optimized = timed(
            lambda: execute_plan(rewritten, workforce.cube)
        )
        original.add(n, wall_ms=wall_original)
        optimized.add(n, wall_ms=wall_optimized)
    return [original, optimized]


def run_cube_compute_ablation(
    seed: int = 23,
) -> list[ExperimentSeries]:
    """Zhao et al. baseline: shared scan vs per-group-by scans."""
    retail = build_retail(
        RetailConfig(
            n_groups=6, products_per_group=6, n_varying=4, n_locations=4, seed=seed
        )
    )
    chunked, _ = retail.chunked(chunk_shape=(4, 3, 2))
    group_bys = all_group_bys(3)

    shared = ExperimentSeries("Shared single scan")
    naive = ExperimentSeries("Scan per group-by")

    chunked.store.reset_stats()
    compute_group_bys(chunked.store, group_bys)
    shared.add(len(group_bys), chunk_reads=chunked.store.stats.chunk_reads)

    chunked.store.reset_stats()
    compute_group_bys_naive(chunked.store, group_bys)
    naive.add(len(group_bys), chunk_reads=chunked.store.stats.chunk_reads)
    return [shared, naive]
