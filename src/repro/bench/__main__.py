"""CLI: regenerate the paper's figures as text tables.

Usage::

    python -m repro.bench fig11
    python -m repro.bench fig12
    python -m repro.bench fig13
    python -m repro.bench ablations
    python -m repro.bench query-engine
    python -m repro.bench all

``query-engine`` also writes the committed ``BENCH_query_engine.json``
baseline (engine-vs-naive throughput; see docs/performance.md).
"""

from __future__ import annotations

import argparse

from repro.bench.ablations import (
    run_cube_compute_ablation,
    run_dimension_order_ablation,
    run_optimizer_ablation,
    run_pebbling_ablation,
)
from repro.bench.fig11 import run_fig11
from repro.bench.fig12 import run_fig12
from repro.bench.fig13 import run_fig13
from repro.bench.harness import print_series


def _fig11() -> None:
    series = run_fig11()
    print_series(
        "Fig. 11 - No. Perspectives vs Query Performance (wall ms)",
        series,
        metric="wall_ms",
        x_label="perspectives",
    )
    print()
    print_series(
        "Fig. 11 - No. Perspectives vs simulated disk ms",
        series,
        metric="simulated_ms",
        x_label="perspectives",
    )


def _fig12() -> None:
    series = run_fig12()
    for metric in ("simulated_ms", "seek_distance", "file_extent", "wall_ms"):
        print_series(
            f"Fig. 12 - Related-chunk co-location vs {metric}",
            series,
            metric=metric,
            x_label="separation x",
        )
        print()


def _fig13() -> None:
    series = run_fig13()
    for metric in ("wall_ms", "simulated_ms", "chunk_reads"):
        print_series(
            f"Fig. 13 - Varying member instances vs {metric}",
            series,
            metric=metric,
            x_label="employees",
        )
        print()


def _ablations() -> None:
    print_series(
        "Ablation - pebbling heuristic vs naive order (max co-resident chunks)",
        run_pebbling_ablation(),
        metric="pebbles",
        x_label="varying products",
    )
    print()
    print_series(
        "Ablation - Lemma 5.1 dimension order (memory, chunks)",
        run_dimension_order_ablation(),
        metric="memory_chunks",
        x_label="varying products",
    )
    print()
    print_series(
        "Ablation - Zhao shared scan vs per-group-by scans (chunk reads)",
        run_cube_compute_ablation(),
        metric="chunk_reads",
        x_label="group-bys",
    )
    print()
    print_series(
        "Ablation - algebraic optimisation: selection pushdown (wall ms)",
        run_optimizer_ablation(),
        metric="wall_ms",
        x_label="selected members",
    )


def _query_engine() -> None:
    from repro.bench.query_engine import (
        render_report,
        run_query_engine,
        write_baseline,
    )

    report = run_query_engine()
    print(render_report(report))
    write_baseline(report)
    print("baseline written to BENCH_query_engine.json")


def main() -> None:
    parser = argparse.ArgumentParser(prog="repro.bench", description=__doc__)
    parser.add_argument(
        "target",
        choices=["fig11", "fig12", "fig13", "ablations", "query-engine", "all"],
        help="which experiment to regenerate",
    )
    args = parser.parse_args()
    if args.target in ("fig11", "all"):
        _fig11()
        print()
    if args.target in ("fig12", "all"):
        _fig12()
    if args.target in ("fig13", "all"):
        _fig13()
    if args.target in ("ablations", "all"):
        _ablations()
    if args.target in ("query-engine", "all"):
        _query_engine()


if __name__ == "__main__":
    main()
