"""Fig. 12 — physical co-location of related chunks vs query performance.

The paper takes a single employee with exactly two instances, runs a
dynamic-forward query returning all of that employee's data, and then
grows the cube so the two instances' chunks are separated by 1x, 2x, ...,
5x a base number of chunks (719,928 in the paper).  Elapsed time rises
with separation and then **flattens**, because disk seek time saturates;
overall performance is linear in cube size.

We reproduce the same mechanism: the chunk store's explicit seek cost
model (`seek = min(a * gap, cap)`) plus `insert_padding` to push the two
instance chunks apart.  The reported `simulated_ms` shows the rise-then-
flatten shape; `file_extent` tracks the growing cube.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentSeries, timed
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.errors import QueryError
from repro.storage.io_stats import IoCostModel
from repro.workload.workforce import WorkforceConfig, build_workforce

__all__ = ["fig12_config", "fig12_cost_model", "run_fig12"]


def fig12_config(seed: int = 42) -> WorkforceConfig:
    """A small cube with one clean two-instance employee is enough — the
    experiment's work is dominated by the separation, not the data."""
    return WorkforceConfig(
        n_employees=80,
        n_departments=8,
        n_changing=8,
        max_moves=1,  # every changer has exactly 2 instances
        n_accounts=4,
        n_scenarios=2,
        seed=seed,
        density=0.25,
    )


def fig12_cost_model() -> IoCostModel:
    """Seek cost saturates at the cap — the paper's 'disk seek time
    eventually becomes a constant overhead'."""
    return IoCostModel(read_ms=1.0, seek_ms_per_chunk=0.01, seek_cap_ms=25.0)


def run_fig12(
    multiples: Sequence[int] = (1, 2, 3, 4, 5),
    base_gap: int = 1_000,
    config: WorkforceConfig | None = None,
    cost_model: IoCostModel | None = None,
) -> list[ExperimentSeries]:
    """Regenerate Fig. 12: separation multiple vs elapsed/simulated time."""
    config = config or fig12_config()
    cost_model = cost_model or fig12_cost_model()
    series = ExperimentSeries("Dynamic Forward (single employee)")

    for multiple in multiples:
        # Fresh cube per point: padding permanently grows the file.
        workforce = build_workforce(config)
        chunked, spec = workforce.chunked(cost_model=cost_model)
        employee = workforce.warehouse.named_set("EmployeeS3").members[0]
        slots = spec.slots_of_member(employee)
        if len(slots) != 2:
            raise QueryError(
                f"Fig. 12 needs a two-instance employee; {employee!r} has "
                f"{len(slots)} instances"
            )
        grid = chunked.grid
        positions = []
        for slot in slots:
            # Locate a stored chunk of this instance via its first valid
            # moment (the other coordinates' first chunk holds data since
            # changing employees are fully populated).
            t0 = spec.validity_of_slot[slot].min()
            coord = [0] * grid.n_dims
            coord[spec.axis_index] = (
                spec.slot_row(slot) // grid.chunk_shape[spec.axis_index]
            )
            coord[spec.param_index] = t0 // grid.chunk_shape[spec.param_index]
            positions.append(chunked.store.position_of(tuple(coord)))
        positions.sort()
        natural_gap = positions[1] - positions[0]
        extra = max(0, multiple * base_gap - natural_gap)
        chunked.store.insert_padding(after_position=positions[0], count=extra)

        pset = PerspectiveSet([0, 3, 6, 9], 12)  # Jan, Apr, Jul, Oct
        chunked.store.reset_stats()
        _, wall = timed(
            lambda: run_perspective_query(
                spec, [employee], pset, Semantics.FORWARD
            )
        )
        stats = chunked.store.stats.snapshot()
        series.add(
            multiple,
            wall_ms=wall,
            simulated_ms=stats["simulated_ms"],
            seek_distance=stats["seek_distance"],
            chunk_reads=stats["chunk_reads"],
            file_extent=chunked.store.file_extent,
        )
    return [series]
