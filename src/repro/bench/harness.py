"""Experiment harness: series containers and table rendering.

Each experiment runner (fig11/fig12/fig13, ablations) returns
:class:`ExperimentSeries` objects — named (x, metrics) series matching the
lines of the paper's figures.  ``print_series`` renders them as aligned
text tables, the form the benchmark CLI (``python -m repro.bench``) and
EXPERIMENTS.md use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["SeriesPoint", "ExperimentSeries", "timed", "print_series", "format_table"]


@dataclass(frozen=True)
class SeriesPoint:
    """One measurement: the x value plus metric name -> value."""

    x: float
    metrics: tuple[tuple[str, float], ...]

    def metric(self, name: str) -> float:
        for key, value in self.metrics:
            if key == name:
                return value
        raise KeyError(f"no metric {name!r} at x={self.x}")


@dataclass
class ExperimentSeries:
    """A named line of a figure: list of points in x order."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)

    def add(self, x: float, **metrics: float) -> SeriesPoint:
        point = SeriesPoint(x, tuple(sorted(metrics.items())))
        self.points.append(point)
        return point

    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    def values(self, metric: str) -> list[float]:
        return [p.metric(metric) for p in self.points]


def timed(func: Callable[[], object]) -> tuple[object, float]:
    """Run a callable, returning (result, elapsed milliseconds)."""
    start = time.perf_counter()
    result = func()
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return result, elapsed_ms


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    width: int = 14,
) -> str:
    """Render an aligned text table with a title rule."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    header = " | ".join(str(c).rjust(width) for c in columns)
    lines = [title, "=" * max(len(title), len(header)), header, "-" * len(header)]
    for row in rows:
        lines.append(" | ".join(fmt(v).rjust(width) for v in row))
    return "\n".join(lines)


def print_series(
    title: str,
    series: Sequence[ExperimentSeries],
    metric: str,
    x_label: str,
) -> str:
    """Render several series sharing an x axis as one table (one column
    per series, like the multi-line figures of the paper)."""
    xs = series[0].xs()
    for s in series:
        if s.xs() != xs:
            raise ValueError(
                f"series {s.name!r} has different x values than {series[0].name!r}"
            )
    columns = [x_label] + [s.name for s in series]
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for s in series:
            row.append(s.points[index].metric(metric))
        rows.append(row)
    text = format_table(title, columns, rows)
    print(text)
    return text
