"""repro — What-if OLAP queries with changing dimensions.

A from-scratch reproduction of Lakshmanan, Russakovsky & Sashikanth,
*What-if OLAP Queries with Changing Dimensions* (ICDE 2008): a
multidimensional OLAP engine with native support for varying dimensions
and member instances, the perspective/what-if query layer (negative and
positive scenarios, five semantics, visual/non-visual modes), an extended
MDX dialect, and the chunk-level perspective-cube evaluation machinery
(merge dependency graphs, pebbling, dimension ordering).

Quick start::

    from repro import Warehouse
    from repro.workload import build_running_example

    ex = build_running_example()
    wh = Warehouse(ex.schema, ex.cube)
    result = wh.query('''
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Descendants([Time], 1, self_and_after)} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM [Warehouse]
        WHERE ([NY], [Salary])
    ''')
    print(result.to_text())
"""

from repro.core import (
    ChangeTuple,
    Mode,
    NegativeScenario,
    PerspectiveSet,
    PositiveScenario,
    Semantics,
    ValiditySet,
    WhatIfCube,
    apply_scenarios,
)
from repro.errors import (
    CircuitOpenError,
    QueryBudgetExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
    SnapshotImmutableError,
    WarehouseCorruptionError,
    WarehouseFormatError,
)
from repro.io import load_warehouse, load_warehouse_recovered, save_warehouse
from repro.mdx.budget import Degradation, QueryBudget
from repro.olap import (
    MISSING,
    Cube,
    CubeSchema,
    Dimension,
    MemberInstance,
    Rule,
    RuleEngine,
    VaryingDimension,
    is_missing,
)
from repro.warehouse import NamedSet, Warehouse
from repro.service import CircuitBreaker, QueryService, QueryTicket

__version__ = "0.1.0"

__all__ = [
    "ChangeTuple",
    "Mode",
    "NegativeScenario",
    "PerspectiveSet",
    "PositiveScenario",
    "Semantics",
    "ValiditySet",
    "WhatIfCube",
    "apply_scenarios",
    "Degradation",
    "QueryBudget",
    "QueryBudgetExceededError",
    "CircuitBreaker",
    "CircuitOpenError",
    "QueryService",
    "QueryTicket",
    "ReproError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "SnapshotImmutableError",
    "WarehouseCorruptionError",
    "WarehouseFormatError",
    "load_warehouse",
    "load_warehouse_recovered",
    "save_warehouse",
    "MISSING",
    "Cube",
    "CubeSchema",
    "Dimension",
    "MemberInstance",
    "Rule",
    "RuleEngine",
    "VaryingDimension",
    "is_missing",
    "NamedSet",
    "Warehouse",
    "__version__",
]
