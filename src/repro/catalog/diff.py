"""The scenario diff operator: containment / overlap / changed cells.

"A Cube Algebra with Comparative Operations" (PAPERS.md) motivates
first-class *comparative* operators between cubes; for delta-encoded
scenarios the comparison never needs the materialized cubes — two
scenarios over the same base differ exactly where their deltas differ,
so the report is computed from the deltas alone in
O(|delta_a| + |delta_b|).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.model import ScenarioState, conflicting_chunks
from repro.olap.schema import Address

__all__ = ["ScenarioDiff", "diff_states"]


@dataclass(frozen=True)
class ScenarioDiff:
    """Structured comparison of two scenarios' change sets."""

    a: str
    b: str
    #: addresses only scenario ``a`` overrides
    only_in_a: tuple[Address, ...]
    #: addresses only scenario ``b`` overrides
    only_in_b: tuple[Address, ...]
    #: addresses both override with the *same* value
    agree: tuple[Address, ...]
    #: (address, value in a, value in b) where both override differently
    differ: "tuple[tuple[Address, float | None, float | None], ...]"
    #: chunks the two change sets touch in incompatible ways (the merge
    #: conflict set, reported here so diff doubles as a merge preflight)
    conflicting_chunks: tuple[str, ...]

    @property
    def a_contained_in_b(self) -> bool:
        """Every change in ``a`` appears identically in ``b``."""
        return not self.only_in_a and not self.differ

    @property
    def b_contained_in_a(self) -> bool:
        return not self.only_in_b and not self.differ

    @property
    def identical(self) -> bool:
        return self.a_contained_in_b and self.b_contained_in_a

    @property
    def overlap(self) -> float:
        """Jaccard overlap of the changed-address sets (1.0 = same
        cells changed, regardless of the values written)."""
        common = len(self.agree) + len(self.differ)
        union = common + len(self.only_in_a) + len(self.only_in_b)
        return common / union if union else 1.0

    @property
    def changed_cells(self) -> int:
        """Cells where materializing ``a`` and ``b`` would disagree."""
        return len(self.only_in_a) + len(self.only_in_b) + len(self.differ)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (the CLI's output format)."""
        return {
            "a": self.a,
            "b": self.b,
            "identical": self.identical,
            "a_contained_in_b": self.a_contained_in_b,
            "b_contained_in_a": self.b_contained_in_a,
            "overlap": round(self.overlap, 6),
            "changed_cells": self.changed_cells,
            "only_in_a": [list(addr) for addr in self.only_in_a],
            "only_in_b": [list(addr) for addr in self.only_in_b],
            "agree": len(self.agree),
            "differ": [
                [list(addr), va, vb] for addr, va, vb in self.differ
            ],
            "conflicting_chunks": list(self.conflicting_chunks),
        }


def diff_states(
    a: ScenarioState, b: ScenarioState, chunk_depth: int
) -> ScenarioDiff:
    only_in_a = tuple(sorted(set(a.delta) - set(b.delta)))
    only_in_b = tuple(sorted(set(b.delta) - set(a.delta)))
    agree: list[Address] = []
    differ: list[tuple[Address, float | None, float | None]] = []
    for address in sorted(set(a.delta) & set(b.delta)):
        va, vb = a.delta[address], b.delta[address]
        if va == vb:
            agree.append(address)
        else:
            differ.append((address, va, vb))
    chunks, _ = conflicting_chunks(a.delta, b.delta, chunk_depth)
    return ScenarioDiff(
        a=a.name,
        b=b.name,
        only_in_a=only_in_a,
        only_in_b=only_in_b,
        agree=tuple(agree),
        differ=tuple(differ),
        conflicting_chunks=chunks,
    )
