"""Durable scenario workspaces (ROADMAP item 3).

The paper's what-if sessions assume an analyst keeps hypothetical worlds
alive across many queries; this package makes those worlds survive the
*process*.  A :class:`~repro.catalog.catalog.ScenarioCatalog` stores
named, delta-encoded branches of the warehouse behind a write-ahead
journal, recovers from a kill at any instruction (replay or rollback,
never a torn state), supports git-like ``fork`` / ``merge`` / ``rebase``
/ ``diff`` between branches, and enforces per-tenant quotas.

See ``docs/scenarios.md`` for the catalog model, the journal format, the
recovery policy and the quota semantics.
"""

from repro.catalog.catalog import (
    CatalogRecovery,
    ScenarioCatalog,
    ScenarioInfo,
    TenantQuota,
)
from repro.catalog.diff import ScenarioDiff, diff_states
from repro.catalog.journal import CatalogJournal
from repro.catalog.model import Delta, ScenarioState

__all__ = [
    "CatalogJournal",
    "CatalogRecovery",
    "Delta",
    "ScenarioCatalog",
    "ScenarioDiff",
    "ScenarioInfo",
    "ScenarioState",
    "TenantQuota",
    "diff_states",
]
