"""Data model of the scenario catalog: deltas, chunks, canonical encoding.

A **scenario** is a named, delta-encoded branch of the warehouse: a
mapping ``address -> override`` where an override is either a float (the
scenario's hypothetical value for that cell) or ``None`` (a tombstone —
the cell reads ⊥ inside the scenario even though the base stores data).
Everything else reads through to the base cube, so a scenario costs
memory and disk proportional to *what it changed*, never to the cube —
the same copy-on-write contract as :meth:`ChunkStore.fork
<repro.storage.chunk_store.ChunkStore.fork>`, applied to the semantic
cube (per the delta-table encoding of "New Dimension Value Introduction
for In-Memory What-If Analysis", PAPERS.md).

Deltas are partitioned into **chunks** for conflict detection: the chunk
key of an address is its first ``chunk_depth`` coordinates (JSON-encoded,
so keys are unambiguous).  Two branches that changed the same chunk in
different ways cannot be merged or rebased automatically — mirroring the
chunk-granularity merge dependencies of :mod:`repro.core.merge_graph`.

The canonical encoding (sorted cells, sorted keys, compact separators) is
shared by the journal and the per-scenario delta files, so a payload has
exactly one byte representation and one SHA-256 — the digest recorded at
append time is the digest verified at recovery time.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.merge_graph import merge_graph_from_occurrences
from repro.errors import CatalogError
from repro.olap.schema import Address

__all__ = [
    "Delta",
    "ScenarioState",
    "canonical_json",
    "chunk_key",
    "chunks_of",
    "conflicting_chunks",
    "decode_state",
    "encode_state",
    "payload_digest",
    "validate_scenario_name",
]

#: address -> override: a float replaces the base value, ``None`` is a
#: tombstone (the cell reads ⊥ inside the scenario).
Delta = dict[Address, "float | None"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-]{0,127}$")


def validate_scenario_name(name: str) -> str:
    """Check a scenario name is usable as a file stem; returns it.

    Names double as delta file names, so they are restricted to a safe
    alphabet (no separators, no leading dot) and 128 characters.
    """
    if not _NAME_RE.match(name):
        raise CatalogError(
            f"invalid scenario name {name!r}: must match "
            "[A-Za-z0-9][A-Za-z0-9_.-]{0,127}"
        )
    return name


def chunk_key(address: Address, chunk_depth: int = 1) -> str:
    """The chunk an address belongs to: its first ``chunk_depth``
    coordinates, JSON-encoded so distinct prefixes never collide."""
    return json.dumps(list(address[:chunk_depth]), separators=(",", ":"))


def chunks_of(delta: Mapping[Address, "float | None"], chunk_depth: int) -> dict[str, list[Address]]:
    """Group a delta's addresses by chunk key (addresses sorted)."""
    grouped: dict[str, list[Address]] = {}
    for address in sorted(delta):
        grouped.setdefault(chunk_key(address, chunk_depth), []).append(address)
    return grouped


def conflicting_chunks(
    ours: Mapping[Address, "float | None"],
    theirs: Mapping[Address, "float | None"],
    chunk_depth: int,
) -> tuple[tuple[str, ...], tuple[Address, ...]]:
    """Chunks both deltas changed *differently*, plus the addresses inside.

    The dependency structure is built with
    :func:`~repro.core.merge_graph.merge_graph_from_occurrences`: each
    shared chunk links its occurrence in branch ``ours`` to its occurrence
    in branch ``theirs``; every edge is a chunk neither branch can merge
    past without the other (the Fig. 8/9 notion, lifted from physical
    chunk planes to delta chunks).  A chunk where both deltas agree
    cell-for-cell is *not* a conflict — the branches made the same change.
    """
    ours_chunks = chunks_of(ours, chunk_depth)
    theirs_chunks = chunks_of(theirs, chunk_depth)
    shared = sorted(set(ours_chunks) & set(theirs_chunks))
    graph = merge_graph_from_occurrences(
        {chunk: [("ours", chunk), ("theirs", chunk)] for chunk in shared}
    )
    conflicts: list[str] = []
    addresses: list[Address] = []
    for _, _, data in sorted(graph.edges(data=True), key=lambda e: e[2]["member"]):
        chunk = data["member"]
        in_ours = {addr: ours[addr] for addr in ours_chunks[chunk]}
        in_theirs = {addr: theirs[addr] for addr in theirs_chunks[chunk]}
        if in_ours == in_theirs:
            continue  # identical change on both sides: no conflict
        conflicts.append(chunk)
        addresses.extend(sorted(set(in_ours) | set(in_theirs)))
    return tuple(conflicts), tuple(addresses)


@dataclass
class ScenarioState:
    """The full persisted state of one scenario (meta + delta).

    ``base_digests`` maps each chunk the delta touches to the SHA-256 of
    the *base cube's* cells in that chunk at the moment the scenario last
    wrote it — the pre-image fingerprint rebase compares against the
    moved base to detect conflicts without a base changelog.
    """

    name: str
    tenant: str
    parent: str  #: "" = branched off the base cube
    base_version: int  #: Cube.version the scenario was last (re)based on
    base_digests: dict[str, str] = field(default_factory=dict)
    delta: Delta = field(default_factory=dict)

    def changed_chunks(self, chunk_depth: int) -> tuple[str, ...]:
        return tuple(sorted(chunks_of(self.delta, chunk_depth)))

    @property
    def changed_cell_count(self) -> int:
        return len(self.delta)

    def copy(self) -> "ScenarioState":
        return ScenarioState(
            name=self.name,
            tenant=self.tenant,
            parent=self.parent,
            base_version=self.base_version,
            base_digests=dict(self.base_digests),
            delta=dict(self.delta),
        )


def canonical_json(payload: object) -> str:
    """The one byte representation a payload has (sorted, compact)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def encode_state(state: ScenarioState) -> str:
    """Canonical JSON text of a scenario's persisted state."""
    cells = sorted(
        [list(address) + [value] for address, value in state.delta.items()]
    )
    return canonical_json(
        {
            "name": state.name,
            "tenant": state.tenant,
            "parent": state.parent,
            "base_version": state.base_version,
            "base_digests": dict(sorted(state.base_digests.items())),
            "cells": cells,
        }
    )


def decode_state(text: str, *, source: str = "<payload>") -> ScenarioState:
    """Parse :func:`encode_state` output; typed error on any malformation."""
    try:
        payload = json.loads(text)
        delta: Delta = {}
        for row in payload["cells"]:
            value = row[-1]
            delta[tuple(str(c) for c in row[:-1])] = (
                None if value is None else float(value)
            )
        return ScenarioState(
            name=str(payload["name"]),
            tenant=str(payload["tenant"]),
            parent=str(payload["parent"]),
            base_version=int(payload["base_version"]),
            base_digests={
                str(k): str(v) for k, v in payload["base_digests"].items()
            },
            delta=delta,
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise CatalogError(
            f"scenario state in {source} is not parseable: {exc}"
        ) from exc


def base_chunk_digests(
    cells: Iterable[tuple[Address, float]], chunk_depth: int
) -> dict[str, str]:
    """SHA-256 per chunk over a base cube's cells (leaf + stored derived).

    The digest of a chunk covers every base cell whose address falls in
    it, in sorted order — the pre-image fingerprint recorded on fork and
    compared on rebase.
    """
    grouped: dict[str, list[tuple[Address, float]]] = {}
    for address, value in cells:
        grouped.setdefault(chunk_key(address, chunk_depth), []).append(
            (address, value)
        )
    return {
        chunk: payload_digest(
            canonical_json(sorted([list(a) + [v] for a, v in rows]))
        )
        for chunk, rows in grouped.items()
    }
