"""Write-ahead journal for the scenario catalog.

One append-only JSONL file (``journal.wal``).  Each line is::

    <sha256-hex> <canonical-json-record>\\n

where the digest covers exactly the canonical JSON text that follows the
single separating space, and the record carries a strictly increasing
``lsn``.  The append protocol is *append record → flush → fsync → apply*:
a catalog mutation is durable the moment its journal line reaches disk,
and only then is it applied to the delta files and the in-memory index.

Recovery reads the file front to back and stops at the first line that is
short, unparseable, checksum-mismatched, or out of LSN order — everything
from that offset on is a **torn tail** (the classic kill-during-append)
and is physically truncated away, which is exactly the
"roll back to the pre-op state" half of the crash contract.  Records that
did land are replayed idempotently: each carries the *full* resulting
scenario state, so redo is a blind install, never a re-execution of
merge/rebase logic against a world that has moved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

from repro.catalog.model import canonical_json, payload_digest
from repro.errors import CatalogError
from repro.faults import inject_io_fault, register_failpoint
from repro.lint.lockdep import make_lock
from repro.obs.trace import trace_span

__all__ = ["CatalogJournal", "JournalRecord", "FP_JOURNAL_APPEND"]

FP_JOURNAL_APPEND = register_failpoint("catalog.journal.append")

#: A parsed journal record: plain dict payload with at least
#: ``lsn`` (int) and ``op`` (str).
JournalRecord = dict


class CatalogJournal:
    """Append-only, checksummed, fsync-on-append JSONL journal.

    ``sync=False`` trades the per-append fsync for throughput (used by the
    bulk-load CLI and the 10k-scenario acceptance workload); the torn-tail
    rollback still holds, the only weakening is that an acknowledged
    append may be lost on power failure — never half-applied.
    """

    def __init__(self, path: Path, *, sync: bool = True) -> None:
        self.path = path
        self.sync = sync
        self._lock = make_lock("CatalogJournal._lock")
        self._handle: "IO[str] | None" = None
        self._next_lsn = 1

    # -- writing ------------------------------------------------------------

    def append(self, record: JournalRecord) -> int:
        """Durably append ``record``; returns the LSN it was assigned.

        The failpoint fires *before* any byte is written, so an injected
        crash here models "power lost before the WAL append" — recovery
        must land on the pre-op state.
        """
        with trace_span("catalog.journal.append"), self._lock:
            inject_io_fault(FP_JOURNAL_APPEND)
            lsn = self._next_lsn
            payload = dict(record)
            payload["lsn"] = lsn
            body = canonical_json(payload)
            line = f"{payload_digest(body)} {body}\n"
            handle = self._open_handle()
            handle.write(line)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
            self._next_lsn = lsn + 1
            return lsn

    def _open_handle(self) -> "IO[str]":  # reprolint: locked
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def set_next_lsn(self, next_lsn: int) -> None:
        """Position the append cursor (called once after recovery)."""
        with self._lock:
            self._next_lsn = next_lsn

    @property
    def next_lsn(self) -> int:
        with self._lock:
            return self._next_lsn

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def flush(self) -> None:
        """Force buffered appends to disk (used by ``sync=False`` callers
        at batch boundaries)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    # -- recovery -----------------------------------------------------------

    def recover(self) -> "tuple[list[JournalRecord], list[str]]":
        """Read every intact record; physically truncate any torn tail.

        Returns ``(records, notes)`` — ``notes`` is non-empty iff a torn
        tail was rolled back (with the reason and byte offset).  After
        this call the append cursor points one past the highest LSN seen.
        """
        with trace_span("catalog.journal.recover"), self._lock:
            if self._handle is not None:  # recovery happens before writes
                self._handle.close()
                self._handle = None
            records, valid_bytes, note = self._scan()
            notes: list[str] = []
            if note is not None:
                self._truncate(valid_bytes)
                notes.append(
                    f"rolled back torn journal tail at byte {valid_bytes}: "
                    f"{note}"
                )
            last_lsn = records[-1]["lsn"] if records else 0
            self._next_lsn = int(last_lsn) + 1
            return records, notes

    def _scan(self) -> "tuple[list[JournalRecord], int, str | None]":
        """Parse the journal; returns (records, valid-byte-count, torn-note).

        ``torn-note`` is ``None`` when the whole file is intact.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0, None
        except OSError as exc:
            raise CatalogError(
                f"journal {self.path} unreadable: {exc}"
            ) from exc

        records: list[JournalRecord] = []
        offset = 0
        last_lsn = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                return records, offset, "record without trailing newline"
            line = raw[offset : newline]
            try:
                text = line.decode("utf-8")
            except UnicodeDecodeError:
                return records, offset, "record is not valid UTF-8"
            digest, sep, body = text.partition(" ")
            if not sep or len(digest) != 64:
                return records, offset, "record missing checksum prefix"
            if payload_digest(body) != digest:
                return records, offset, "record checksum mismatch"
            try:
                record = json.loads(body)
            except json.JSONDecodeError:
                return records, offset, "record is not parseable JSON"
            if not isinstance(record, dict) or "lsn" not in record:
                return records, offset, "record has no lsn"
            lsn = int(record["lsn"])
            if lsn <= last_lsn:
                return records, offset, (
                    f"lsn {lsn} out of order after {last_lsn}"
                )
            last_lsn = lsn
            records.append(record)
            offset = newline + 1
        return records, offset, None

    def _truncate(self, valid_bytes: int) -> None:
        with open(self.path, "r+b") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())

    def reset(self) -> None:
        """Empty the journal (called after a checkpoint made it redundant).

        Truncation, not deletion: an existing-but-empty WAL is
        unambiguous, while a missing one is indistinguishable from a
        never-journaled store.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if self.path.exists():
                self._truncate(0)

    def size_bytes(self) -> int:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
            try:
                return self.path.stat().st_size
            except FileNotFoundError:
                return 0
