"""The persistent, crash-safe scenario catalog.

A :class:`ScenarioCatalog` keeps named what-if workspaces alive across
process restarts.  On disk it is one directory::

    <root>/
      MANIFEST.json       checkpoint manifest (durability.py generations)
      CATALOG.json        last checkpoint: lsn + per-scenario digests
      journal.wal         write-ahead journal since that checkpoint
      deltas/<name>.json  one canonical delta file per scenario

Every mutation follows the WAL protocol: *journal append (fsync) →
apply*.  The fsync'd append is the commit point; the apply step rewrites
the scenario's delta file atomically and updates the in-memory index.  A
kill anywhere therefore leaves the catalog in exactly the pre-op state
(torn journal tail, rolled back on reopen) or the post-op state (record
replayed on reopen) — never a torn hybrid.  Checkpoints
(:meth:`ScenarioCatalog.gc`, or automatic every ``checkpoint_interval``
commits) fold the journal into ``CATALOG.json`` via
:func:`~repro.durability.commit_generation` and truncate it; the journal
is only ever truncated *after* the checkpoint manifest committed, so
recovery always has either the checkpoint or the records.

Recovery policy on open (mirroring
:func:`~repro.io.load_warehouse_recovered`):

1. restore the checkpoint via :func:`~repro.durability.recover_store`
   (``.prev`` fallback, quarantine);
2. verify each checkpointed delta file against its recorded SHA-256;
3. replay journal records with ``lsn > checkpoint_lsn`` — each record
   carries the full resulting scenario state, so redo is an idempotent
   install that also repairs damaged delta files;
4. **adopt** any self-consistent delta file the surviving metadata does
   not know about (a durably-applied write whose checkpoint was lost);
5. quarantine whatever is still damaged as ``*.corrupt`` and raise
   :class:`~repro.errors.CatalogCorruptionError` — or, with
   ``allow_lost=True``, drop the named scenarios and report them.

Per-tenant quotas (max scenarios, max delta bytes) are enforced *before*
the journal append: a breach raises
:class:`~repro.errors.ScenarioQuotaError` and nothing is evicted
silently.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.catalog.diff import ScenarioDiff, diff_states
from repro.catalog.journal import CatalogJournal
from repro.catalog.model import (
    ScenarioState,
    base_chunk_digests,
    canonical_json,
    chunk_key,
    chunks_of,
    conflicting_chunks,
    decode_state,
    encode_state,
    payload_digest,
    validate_scenario_name,
)
from repro.durability import (
    MANIFEST_NAME,
    atomic_write_text,
    commit_generation,
    file_digest,
    recover_store,
)
from repro.errors import (
    CatalogCorruptionError,
    CatalogError,
    ScenarioConflictError,
    ScenarioExistsError,
    ScenarioNotFoundError,
    ScenarioQuotaError,
    WarehouseCorruptionError,
    WarehouseFormatError,
)
from repro.faults import inject_io_fault, register_failpoint
from repro.lint.lockdep import make_lock
from repro.obs.metrics import METRICS
from repro.obs.trace import trace_span
from repro.olap.cube import Cube
from repro.olap.missing import is_missing
from repro.perf.scenario_cache import ScenarioCache

__all__ = [
    "CatalogRecovery",
    "ScenarioCatalog",
    "ScenarioInfo",
    "TenantQuota",
    "CATALOG_FILE",
    "DELTA_DIR",
    "JOURNAL_FILE",
]

FORMAT_VERSION = 1
CATALOG_FILE = "CATALOG.json"
JOURNAL_FILE = "journal.wal"
DELTA_DIR = "deltas"
_CORRUPT_SUFFIX = ".corrupt"
DEFAULT_TENANT = "default"

FP_CATALOG_APPLY = register_failpoint("catalog.apply")
FP_CATALOG_RECOVER = register_failpoint("catalog.recover")


@dataclass(frozen=True)
class TenantQuota:
    """Resource ceiling for one tenant's scenarios.

    ``None`` means unlimited.  Breaches fail the *offending operation*
    with a typed :class:`~repro.errors.ScenarioQuotaError`; existing
    scenarios are never evicted to make room.
    """

    max_scenarios: "int | None" = None
    max_delta_bytes: "int | None" = None

    def check(self, tenant: str, scenarios: int, delta_bytes: int) -> None:
        if self.max_scenarios is not None and scenarios > self.max_scenarios:
            raise ScenarioQuotaError(
                f"tenant {tenant!r} would hold {scenarios} scenarios, over "
                f"its max-scenarios quota of {self.max_scenarios}",
                tenant=tenant,
                quota="max-scenarios",
                limit=self.max_scenarios,
                used=scenarios,
            )
        if (
            self.max_delta_bytes is not None
            and delta_bytes > self.max_delta_bytes
        ):
            raise ScenarioQuotaError(
                f"tenant {tenant!r} would hold {delta_bytes} delta bytes, "
                f"over its max-delta-bytes quota of {self.max_delta_bytes}",
                tenant=tenant,
                quota="max-delta-bytes",
                limit=self.max_delta_bytes,
                used=delta_bytes,
            )


@dataclass(frozen=True)
class ScenarioInfo:
    """Public summary of one catalog scenario (for listings and the CLI)."""

    name: str
    tenant: str
    parent: str
    base_version: int
    delta_bytes: int
    changed_cells: int
    changed_chunks: int


@dataclass
class CatalogRecovery:
    """What opening the catalog had to do to reach a consistent state.

    Mirrors :class:`~repro.durability.RecoveredStore`; ``outcome`` is the
    label recorded on ``catalog_recoveries_total`` (``clean`` /
    ``replayed`` / ``rolled_back`` / ``restored`` / ``lost``).
    """

    root: Path
    outcome: str = "clean"
    #: journal records redone past the checkpoint
    replayed: int = 0
    #: True when a torn journal tail was truncated away
    rolled_back: bool = False
    #: True when the checkpoint came from the ``.prev`` generation
    restored_from_previous: bool = False
    #: scenarios re-installed from self-consistent delta files the
    #: surviving metadata did not list
    adopted: list[str] = field(default_factory=list)
    #: damaged files moved aside as ``*.corrupt``
    quarantined: list[str] = field(default_factory=list)
    #: scenarios that could not be recovered (dropped iff allow_lost)
    lost: list[str] = field(default_factory=list)
    #: human-readable notes describing every recovery action taken
    notes: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return (
            self.replayed > 0
            or self.rolled_back
            or self.restored_from_previous
            or bool(self.adopted)
            or bool(self.quarantined)
            or bool(self.lost)
        )


class ScenarioCatalog:
    """Durable, delta-encoded, multi-tenant scenario workspaces.

    Thread-safe: every public operation runs under one catalog lock
    (ranked in :mod:`repro.lint.lock_hierarchy` above the cube and cache
    locks it acquires).  Opening *is* recovery — the constructor replays
    or rolls back whatever the last process left behind and records the
    outcome in :attr:`recovery`.
    """

    def __init__(
        self,
        root: "Path | str",
        *,
        base: "Cube | None" = None,
        default_quota: "TenantQuota | None" = None,
        quotas: "Mapping[str, TenantQuota] | None" = None,
        chunk_depth: int = 1,
        sync: bool = True,
        checkpoint_interval: int = 512,
        cache_size: int = 32,
        allow_lost: bool = False,
    ) -> None:
        self.root = Path(root)
        self.chunk_depth = chunk_depth
        self.checkpoint_interval = checkpoint_interval
        self._base = base
        self._default_quota = default_quota or TenantQuota()
        self._quotas: dict[str, TenantQuota] = dict(quotas or {})
        self._lock = make_lock("ScenarioCatalog._lock")
        self._journal = CatalogJournal(self.root / JOURNAL_FILE, sync=sync)
        self._cache: "ScenarioCache[Cube]" = ScenarioCache(maxsize=cache_size)
        self._scenarios: dict[str, ScenarioState] = {}
        self._sizes: dict[str, int] = {}
        self._generation = 0
        self._checkpoint_lsn = 0
        self._gauged_tenants: set[str] = set()
        self._base_digest_cache: "tuple[int, dict[str, str]] | None" = None
        #: (base version, chunked image, chunk_shape) — the physical base
        #: image materialize_chunked() forks copy-on-write
        self._base_chunked: "tuple[int, object, object] | None" = None
        self.recovery = self._recover(allow_lost=allow_lost)

    @classmethod
    def open_recovered(
        cls, root: "Path | str", **options: object
    ) -> "tuple[ScenarioCatalog, CatalogRecovery]":
        """Open and also return the recovery report (mirrors
        :func:`~repro.io.load_warehouse_recovered`)."""
        catalog = cls(root, **options)  # type: ignore[arg-type]
        return catalog, catalog.recovery

    # -- recovery -----------------------------------------------------------

    def _recover(self, *, allow_lost: bool) -> CatalogRecovery:
        report = CatalogRecovery(root=self.root)
        with trace_span("catalog.recover"), self._lock:
            inject_io_fault(FP_CATALOG_RECOVER)
            self.root.mkdir(parents=True, exist_ok=True)
            self._delta_dir.mkdir(exist_ok=True)

            checkpoint_lsn, entries = self._load_checkpoint(report)
            damaged = self._load_delta_files(entries, report)

            records, journal_notes = self._journal.recover()
            report.notes.extend(journal_notes)
            report.rolled_back = bool(journal_notes)
            max_lsn = checkpoint_lsn
            for record in records:
                lsn = int(record["lsn"])
                max_lsn = max(max_lsn, lsn)
                if lsn <= checkpoint_lsn:
                    continue
                self._redo(record)
                damaged.pop(str(record["scenario"]), None)
                report.replayed += 1

            self._adopt_or_quarantine(damaged, report)

            if report.lost and not allow_lost:
                METRICS.counter(
                    "catalog_recoveries_total", outcome="lost"
                ).inc()
                raise CatalogCorruptionError(
                    f"scenario catalog at {self.root} failed integrity "
                    "checks beyond journal repair",
                    lost=tuple(report.lost),
                    quarantined=tuple(report.quarantined),
                )

            self._checkpoint_lsn = checkpoint_lsn
            self._generation = max_lsn
            self._journal.set_next_lsn(max_lsn + 1)
            report.outcome = (
                "lost" if report.lost
                else "rolled_back" if report.rolled_back
                else "replayed" if report.replayed
                else "restored" if (
                    report.restored_from_previous
                    or report.adopted
                    or report.quarantined
                )
                else "clean"
            )
            METRICS.counter(
                "catalog_recoveries_total", outcome=report.outcome
            ).inc()
            self._refresh_gauges()
        return report

    def _load_checkpoint(
        self, report: CatalogRecovery
    ) -> "tuple[int, dict[str, tuple[str, int]]]":
        """Restore ``CATALOG.json`` (with ``.prev`` fallback); returns the
        checkpoint LSN and the name → (sha256, bytes) delta index."""
        manifest_here = (self.root / MANIFEST_NAME).exists() or (
            self.root / (MANIFEST_NAME + ".prev")
        ).exists()
        if not manifest_here:
            return 0, {}  # never checkpointed: the journal is everything
        try:
            store = recover_store(self.root, expected_files=(CATALOG_FILE,))
        except (WarehouseCorruptionError, WarehouseFormatError) as exc:
            # Both checkpoint generations are gone; the journal and the
            # delta files (via adoption) carry the recovery from here.
            report.quarantined.extend(getattr(exc, "quarantined", ()))
            report.notes.append(f"checkpoint unrecoverable: {exc}")
            return 0, {}
        report.restored_from_previous = store.restored_from_previous
        report.quarantined.extend(store.quarantined)
        report.notes.extend(store.notes)
        path = store.files.get(CATALOG_FILE, self.root / CATALOG_FILE)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            checkpoint_lsn = int(payload["checkpoint_lsn"])
            entries = {
                str(name): (str(meta["sha256"]), int(meta["bytes"]))
                for name, meta in payload["scenarios"].items()
            }
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            report.notes.append(f"checkpoint file unusable: {exc}")
            return 0, {}
        return checkpoint_lsn, entries

    def _load_delta_files(
        self,
        entries: "dict[str, tuple[str, int]]",
        report: CatalogRecovery,
    ) -> dict[str, str]:
        """Install every checkpointed scenario whose delta file verifies;
        returns name → problem for the rest (journal replay or adoption
        may still repair them)."""
        damaged: dict[str, str] = {}
        for name, (digest, size) in sorted(entries.items()):
            path = self._delta_path(name)
            if not path.exists():
                damaged[name] = "missing"
                continue
            actual_digest, actual_size = file_digest(path)
            if (actual_digest, actual_size) != (digest, size):
                damaged[name] = "checksum mismatch"
                continue
            try:
                text = path.read_text(encoding="utf-8")
                state = decode_state(text, source=str(path))
            except (OSError, CatalogError) as exc:
                damaged[name] = f"unreadable: {exc}"
                continue
            self._install(state, len(text.encode("utf-8")))
        return damaged

    def _adopt_or_quarantine(
        self, damaged: dict[str, str], report: CatalogRecovery
    ) -> None:
        """Last-chance pass over delta files the metadata cannot vouch for.

        A file that decodes and re-encodes to exactly its own bytes was
        written by :func:`~repro.catalog.model.encode_state` through an
        atomic rename — it is a durably-applied post-op state whose
        checkpoint/journal record was lost, so it is **adopted**.
        Anything else is quarantined as ``*.corrupt`` and reported lost.
        """
        on_disk = {
            path.stem: path
            for path in sorted(self._delta_dir.glob("*.json"))
        }
        candidates = set(damaged) | (set(on_disk) - set(self._scenarios))
        for name in sorted(candidates):
            if name in self._scenarios:
                continue  # journal replay already repaired it
            path = on_disk.get(name)
            if path is None:
                report.lost.append(name)
                report.notes.append(
                    f"scenario {name}: delta file missing "
                    f"({damaged.get(name, 'not checkpointed')})"
                )
                continue
            adopted = False
            try:
                text = path.read_text(encoding="utf-8")
                state = decode_state(text, source=str(path))
                if state.name == name and encode_state(state) == text:
                    self._install(state, len(text.encode("utf-8")))
                    report.adopted.append(name)
                    report.notes.append(
                        f"adopted {name} from its delta file "
                        f"({damaged.get(name, 'not in checkpoint')})"
                    )
                    adopted = True
            except (OSError, CatalogError):
                pass
            if not adopted:
                target = path.with_name(path.name + _CORRUPT_SUFFIX)
                os.replace(path, target)
                report.quarantined.append(f"{DELTA_DIR}/{target.name}")
                report.lost.append(name)
                report.notes.append(
                    f"quarantined {DELTA_DIR}/{path.name} -> "
                    f"{DELTA_DIR}/{target.name}"
                )

    def _install(self, state: ScenarioState, size: int) -> None:  # reprolint: locked
        self._scenarios[state.name] = state
        self._sizes[state.name] = size

    def _redo(self, record: dict) -> None:  # reprolint: locked
        """Idempotently re-apply one journal record (replay path)."""
        name = str(record["scenario"])
        if record.get("op") == "drop" or record.get("state") is None:
            self._scenarios.pop(name, None)
            self._sizes.pop(name, None)
            self._delta_path(name).unlink(missing_ok=True)
            return
        text = canonical_json(record["state"])
        state = decode_state(text, source=f"journal lsn {record['lsn']}")
        current = self._delta_path(name)
        try:
            existing = current.read_text(encoding="utf-8")
        except OSError:
            existing = None
        if existing != text:
            atomic_write_text(current, text)
        self._install(state, len(text.encode("utf-8")))

    # -- the WAL commit protocol -------------------------------------------

    def _commit(self, op: str, name: str, state: "ScenarioState | None") -> int:  # reprolint: locked
        """Journal append (the commit point) → apply → index update.

        ``state=None`` means drop.  Callers hold the catalog lock; the
        ``catalog.apply`` failpoint sits exactly between the durable
        append and the apply, the widest crash window the matrix kills in.
        """
        if state is not None:
            text = encode_state(state)
            size = len(text.encode("utf-8"))
            self._check_quota(op, state, size)
            record = {"op": op, "scenario": name, "state": json.loads(text)}
        else:
            text, size = "", 0
            record = {"op": op, "scenario": name, "state": None}
        lsn = self._journal.append(record)
        inject_io_fault(FP_CATALOG_APPLY)
        if state is None:
            self._scenarios.pop(name, None)
            self._sizes.pop(name, None)
            self._delta_path(name).unlink(missing_ok=True)
        else:
            atomic_write_text(self._delta_path(name), text)
            self._install(state, size)
        self._generation = lsn
        METRICS.counter("catalog_ops_total", op=op).inc()
        self._refresh_gauges()
        if lsn - self._checkpoint_lsn >= self.checkpoint_interval:
            self._checkpoint()
        return lsn

    def _check_quota(self, op: str, state: ScenarioState, size: int) -> None:  # reprolint: locked
        tenant = state.tenant
        quota = self._quotas.get(tenant, self._default_quota)
        count, used = 0, 0
        for name, existing in self._scenarios.items():
            if existing.tenant != tenant or name == state.name:
                continue
            count += 1
            used += self._sizes.get(name, 0)
        quota.check(tenant, count + 1, used + size)

    def _refresh_gauges(self) -> None:  # reprolint: locked
        usage: dict[str, int] = {}
        for state in self._scenarios.values():
            usage[state.tenant] = usage.get(state.tenant, 0) + 1
        for tenant in self._gauged_tenants - set(usage):
            METRICS.gauge("catalog_scenarios", tenant=tenant).set(0)
        for tenant, count in usage.items():
            METRICS.gauge("catalog_scenarios", tenant=tenant).set(count)
        self._gauged_tenants = set(usage)
        METRICS.gauge("catalog_delta_bytes").set(sum(self._sizes.values()))

    def _checkpoint(self) -> None:  # reprolint: locked
        """Fold the journal into ``CATALOG.json`` and truncate it.

        The manifest rename inside :func:`commit_generation` is the
        checkpoint's commit point; the journal truncation only happens
        after it, so a kill anywhere in between replays harmlessly
        (records at or below the checkpoint LSN are skipped on reopen).
        """
        scenarios = {}
        for name, state in sorted(self._scenarios.items()):
            text = encode_state(state)
            scenarios[name] = {
                "sha256": payload_digest(text),
                "bytes": len(text.encode("utf-8")),
            }
        payload = {
            "format_version": FORMAT_VERSION,
            "checkpoint_lsn": self._generation,
            "scenarios": scenarios,
        }
        commit_generation(
            self.root,
            {CATALOG_FILE: json.dumps(payload, indent=2, sort_keys=True)},
            format_version=FORMAT_VERSION,
        )
        self._journal.reset()
        self._checkpoint_lsn = self._generation

    # -- helpers ------------------------------------------------------------

    @property
    def _delta_dir(self) -> Path:
        return self.root / DELTA_DIR

    def _delta_path(self, name: str) -> Path:
        return self._delta_dir / f"{name}.json"

    def _require(self, name: str) -> ScenarioState:  # reprolint: locked
        state = self._scenarios.get(name)
        if state is None:
            raise ScenarioNotFoundError(name)
        return state

    def _normalize_cells(
        self, cells: "Mapping[Sequence[str], object] | None"
    ) -> "dict[tuple[str, ...], float | None]":
        normalized: dict[tuple[str, ...], float | None] = {}
        for address, value in (cells or {}).items():
            addr = tuple(str(coord) for coord in address)
            if value is None or is_missing(value):
                normalized[addr] = None
            else:
                try:
                    normalized[addr] = float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError) as exc:
                    raise CatalogError(
                        f"scenario cell {'/'.join(addr)} has non-numeric "
                        f"value {value!r}"
                    ) from exc
        return normalized

    def _base_digest_map(self) -> dict[str, str]:  # reprolint: locked
        """Per-chunk digests of the current base cube, cached per
        ``base.version`` (computing them is one O(cube) pass)."""
        if self._base is None:
            return {}
        version = self._base.version
        cached = self._base_digest_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        digests = base_chunk_digests(self._base.cells(), self.chunk_depth)
        self._base_digest_cache = (version, digests)
        return digests

    def _digests_for(self, delta: Mapping) -> dict[str, str]:  # reprolint: locked
        current = self._base_digest_map()
        return {
            chunk: current.get(chunk, "")
            for chunk in chunks_of(delta, self.chunk_depth)
        }

    # -- read API -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._scenarios

    def __len__(self) -> int:
        with self._lock:
            return len(self._scenarios)

    @property
    def generation(self) -> int:
        """Monotone catalog version: the LSN of the last applied op.
        Cache keys derived from scenario content must include this."""
        with self._lock:
            return self._generation

    @property
    def base(self) -> "Cube | None":
        return self._base

    def get_state(self, name: str) -> ScenarioState:
        """A deep copy of one scenario's state (meta + delta)."""
        with self._lock:
            return self._require(name).copy()

    def info(self, name: str) -> ScenarioInfo:
        with self._lock:
            state = self._require(name)
            return self._info_locked(state)

    def _info_locked(self, state: ScenarioState) -> ScenarioInfo:  # reprolint: locked
        return ScenarioInfo(
            name=state.name,
            tenant=state.tenant,
            parent=state.parent,
            base_version=state.base_version,
            delta_bytes=self._sizes.get(state.name, 0),
            changed_cells=state.changed_cell_count,
            changed_chunks=len(state.changed_chunks(self.chunk_depth)),
        )

    def list_scenarios(self, tenant: "str | None" = None) -> list[ScenarioInfo]:
        with trace_span("catalog.list"), self._lock:
            return [
                self._info_locked(state)
                for name, state in sorted(self._scenarios.items())
                if tenant is None or state.tenant == tenant
            ]

    def delta_bytes(self, tenant: "str | None" = None) -> int:
        """Total encoded delta bytes (optionally one tenant's)."""
        with self._lock:
            if tenant is None:
                return sum(self._sizes.values())
            return sum(
                size
                for name, size in self._sizes.items()
                if self._scenarios[name].tenant == tenant
            )

    def stats(self) -> dict[str, int]:
        """Point-in-time counters for collectors and ``EXPLAIN`` output."""
        with self._lock:
            return {
                "scenarios": len(self._scenarios),
                "delta_bytes": sum(self._sizes.values()),
                "generation": self._generation,
                "checkpoint_lsn": self._checkpoint_lsn,
                "journal_bytes": self._journal.size_bytes(),
            }

    # -- mutating API --------------------------------------------------------

    def create(
        self,
        name: str,
        *,
        tenant: str = DEFAULT_TENANT,
        cells: "Mapping[Sequence[str], object] | None" = None,
    ) -> ScenarioInfo:
        """Create a scenario branched off the base cube."""
        with trace_span("catalog.create", scenario=name), self._lock:
            validate_scenario_name(name)
            if name in self._scenarios:
                raise ScenarioExistsError(name)
            delta = self._normalize_cells(cells)
            state = ScenarioState(
                name=name,
                tenant=tenant,
                parent="",
                base_version=self._base.version if self._base is not None else 0,
                base_digests=self._digests_for(delta),
                delta=delta,
            )
            self._commit("create", name, state)
            return self._info_locked(state)

    def fork(
        self,
        name: str,
        source: "str | None" = None,
        *,
        tenant: "str | None" = None,
    ) -> ScenarioInfo:
        """Branch a new scenario off ``source`` (or off the base cube).

        The fork copies only the source's *delta* — memory and disk keep
        scaling with changed cells, not cube size × scenarios.
        """
        with trace_span("catalog.fork", scenario=name, source=source or ""), self._lock:
            validate_scenario_name(name)
            if name in self._scenarios:
                raise ScenarioExistsError(name)
            if source is None:
                origin = ScenarioState(
                    name=name,
                    tenant=tenant or DEFAULT_TENANT,
                    parent="",
                    base_version=(
                        self._base.version if self._base is not None else 0
                    ),
                )
            else:
                parent = self._require(source)
                origin = ScenarioState(
                    name=name,
                    tenant=tenant or parent.tenant,
                    parent=source,
                    base_version=parent.base_version,
                    base_digests=dict(parent.base_digests),
                    delta=dict(parent.delta),
                )
            self._commit("fork", name, origin)
            return self._info_locked(origin)

    def update(
        self,
        name: str,
        cells: "Mapping[Sequence[str], object] | None" = None,
        *,
        clear: "Iterable[Sequence[str]]" = (),
    ) -> ScenarioInfo:
        """Apply cell overrides to a scenario (``None`` values tombstone
        the cell); ``clear`` removes overrides so cells read the base
        again."""
        with trace_span("catalog.update", scenario=name), self._lock:
            state = self._require(name).copy()
            for address in clear:
                state.delta.pop(tuple(str(c) for c in address), None)
            state.delta.update(self._normalize_cells(cells))
            state.base_digests = self._digests_for(state.delta)
            self._commit("update", name, state)
            return self._info_locked(state)

    def merge(
        self,
        source: str,
        into: str,
        *,
        on_conflict: str = "raise",
    ) -> ScenarioInfo:
        """Fold scenario ``source``'s delta into scenario ``into``.

        Conflicts are chunks both branches changed differently
        (:func:`~repro.catalog.model.conflicting_chunks`).
        ``on_conflict``: ``"raise"`` (default, typed
        :class:`~repro.errors.ScenarioConflictError`), ``"ours"`` (keep
        ``into``'s version of conflicting chunks) or ``"theirs"`` (take
        ``source``'s).
        """
        with trace_span("catalog.merge", source=source, into=into), self._lock:
            self._check_resolution(on_conflict)
            src = self._require(source)
            dst = self._require(into)
            conflicts, addresses = conflicting_chunks(
                dst.delta, src.delta, self.chunk_depth
            )
            if conflicts and on_conflict == "raise":
                raise ScenarioConflictError(
                    f"cannot merge {source!r} into {into!r}",
                    chunks=conflicts,
                    addresses=addresses,
                )
            conflicted = set(conflicts)
            merged = dict(dst.delta)
            if on_conflict == "theirs":
                merged = {
                    addr: value
                    for addr, value in merged.items()
                    if chunk_key(addr, self.chunk_depth) not in conflicted
                }
            for addr, value in src.delta.items():
                if (
                    on_conflict == "ours"
                    and chunk_key(addr, self.chunk_depth) in conflicted
                ):
                    continue
                merged[addr] = value
            digests = dict(dst.base_digests)
            for chunk, digest in src.base_digests.items():
                if chunk not in digests or (
                    chunk in conflicted and on_conflict == "theirs"
                ):
                    digests[chunk] = digest
            state = ScenarioState(
                name=dst.name,
                tenant=dst.tenant,
                parent=dst.parent,
                base_version=dst.base_version,
                base_digests=digests,
                delta=merged,
            )
            self._commit("merge", into, state)
            return self._info_locked(state)

    def rebase(self, name: str, *, on_conflict: str = "raise") -> ScenarioInfo:
        """Move a scenario onto the *current* base cube version.

        A chunk conflicts when the base's cells under it changed since
        the scenario recorded its pre-image digest.  ``on_conflict``:
        ``"raise"``, ``"ours"`` (keep the scenario's overrides anyway)
        or ``"theirs"`` (drop overrides in conflicting chunks, so those
        cells read the moved base).
        """
        with trace_span("catalog.rebase", scenario=name), self._lock:
            self._check_resolution(on_conflict)
            if self._base is None:
                raise CatalogError(
                    "catalog has no base cube bound; rebase requires one "
                    "(open the catalog through Warehouse.attach_catalog)"
                )
            state = self._require(name).copy()
            current = self._base_digest_map()
            conflicts = tuple(
                chunk
                for chunk, recorded in sorted(state.base_digests.items())
                if current.get(chunk, "") != recorded
            )
            if conflicts and on_conflict == "raise":
                conflicted = set(conflicts)
                addresses = tuple(
                    addr
                    for addr in sorted(state.delta)
                    if chunk_key(addr, self.chunk_depth) in conflicted
                )
                raise ScenarioConflictError(
                    f"cannot rebase {name!r}: the base cube moved under it",
                    chunks=conflicts,
                    addresses=addresses,
                )
            if on_conflict == "theirs" and conflicts:
                conflicted = set(conflicts)
                state.delta = {
                    addr: value
                    for addr, value in state.delta.items()
                    if chunk_key(addr, self.chunk_depth) not in conflicted
                }
            state.base_version = self._base.version
            state.base_digests = self._digests_for(state.delta)
            self._commit("rebase", name, state)
            return self._info_locked(state)

    def drop(self, name: str) -> None:
        """Remove a scenario (journaled like every other mutation)."""
        with trace_span("catalog.drop", scenario=name), self._lock:
            self._require(name)
            self._commit("drop", name, None)

    @staticmethod
    def _check_resolution(on_conflict: str) -> None:
        if on_conflict not in ("raise", "ours", "theirs"):
            raise CatalogError(
                f"on_conflict must be 'raise', 'ours' or 'theirs', "
                f"not {on_conflict!r}"
            )

    # -- derived views -------------------------------------------------------

    def diff(self, a: str, b: str) -> ScenarioDiff:
        """Containment / overlap / changed-cell report between two
        scenarios (the comparative diff operator of "A Cube Algebra with
        Comparative Operations", PAPERS.md)."""
        with trace_span("catalog.diff", a=a, b=b), self._lock:
            return diff_states(
                self._require(a), self._require(b), self.chunk_depth
            )

    def materialize(self, name: str) -> Cube:
        """The scenario as a frozen cube: base copy + delta applied.

        Results are cached in a :class:`ScenarioCache` keyed on
        ``(base.version, catalog.generation)`` — a merge or rebase bumps
        the generation, so stale cubes can never be served.
        """
        with trace_span("catalog.materialize", scenario=name), self._lock:
            state = self._require(name)
            if self._base is None:
                raise CatalogError(
                    "catalog has no base cube bound; materialize requires "
                    "one (open the catalog through Warehouse.attach_catalog)"
                )
            version = (self._base.version, self._generation)
            cached = self._cache.get(("catalog", name), version)
            if cached is not None:
                return cached
            cube = self._base.copy()
            # One bulk mutation instead of a set_value round trip per
            # delta cell: a single version bump and one locked pass.
            cube.apply_overrides(sorted(state.delta.items()))
            cube.freeze()
            self._cache.put(("catalog", name), version, cube)
            return cube

    def materialize_chunked(self, name: str, chunk_shape=None):
        """The scenario as a *physical* chunked image, applied
        copy-on-write.

        The base cube's chunked representation (built once per base
        version, leaf values served from the columnar index planes) is
        forked through :meth:`~repro.storage.chunk_store.ChunkStore.fork`
        and only the delta-touched chunks are rewritten — untouched
        chunks stay shared with the base image by identity, and the
        fork's I/O ledger charges exactly the rewritten chunks.
        Tombstones (``None`` deltas) write NaN (⊥).  Results are cached
        like :meth:`materialize`.

        Raises :class:`~repro.errors.CatalogError` when a delta cell is
        not addressable on the base image's leaf axes (e.g. a coordinate
        the base cube never stored): such a scenario has no complete
        physical image and must be served semantically.
        """
        from repro.errors import StorageError

        with trace_span(
            "catalog.materialize_chunked", scenario=name
        ), self._lock:
            state = self._require(name)
            if self._base is None:
                raise CatalogError(
                    "catalog has no base cube bound; materialize_chunked "
                    "requires one (open the catalog through "
                    "Warehouse.attach_catalog)"
                )
            version = (self._base.version, self._generation)
            cached = self._cache.get(("catalog-chunked", name), version)
            if cached is not None:
                return cached
            base_image = self._base_image(chunk_shape)
            fork = base_image.fork()
            grid = fork.store.grid
            by_chunk: "dict[tuple[int, ...], list]" = {}
            for address, value in sorted(state.delta.items()):
                try:
                    cell = fork.cell_of(address)
                except StorageError as exc:
                    raise CatalogError(
                        f"scenario {name!r} delta cell {address!r} is not "
                        f"addressable on the base image's leaf axes; "
                        f"materialize it semantically instead ({exc})"
                    ) from None
                by_chunk.setdefault(grid.chunk_of_cell(cell), []).append(
                    (cell, value)
                )
            for coord in sorted(by_chunk):
                data = np.array(fork.store.peek(coord), copy=True)
                origin = grid.chunk_origin(coord)
                for cell, value in by_chunk[coord]:
                    local = tuple(c - o for c, o in zip(cell, origin))
                    data[local] = float("nan") if value is None else value
                fork.store.write(coord, data)
            self._cache.put(("catalog-chunked", name), version, fork)
            return fork

    def _base_image(self, chunk_shape=None):  # reprolint: locked
        """The base cube's chunked image, built once per base version
        (leaf values gathered from the columnar index planes)."""
        from repro.storage.array_cube import ChunkedCube

        cached = self._base_chunked
        if (
            cached is not None
            and cached[0] == self._base.version
            and (chunk_shape is None or cached[2] == chunk_shape)
        ):
            return cached[1]
        image = ChunkedCube.from_cube(self._base, chunk_shape)
        self._base_chunked = (self._base.version, image, chunk_shape)
        return image

    @property
    def cache(self) -> "ScenarioCache[Cube]":
        return self._cache

    # -- maintenance ---------------------------------------------------------

    def gc(self) -> dict[str, int]:
        """Checkpoint, truncate the journal, and sweep orphan delta files.

        Returns a report of what was reclaimed.  Orphans (delta files no
        live scenario owns — e.g. left by a crash between a replayed drop
        and its file deletion) are removed; ``*.corrupt`` quarantine
        files are counted but deliberately kept for post-mortems.
        """
        with trace_span("catalog.gc"), self._lock:
            journal_before = self._journal.size_bytes()
            self._checkpoint()
            orphans = 0
            for path in sorted(self._delta_dir.glob("*.json")):
                if path.stem not in self._scenarios:
                    path.unlink(missing_ok=True)
                    orphans += 1
            corrupt = len(list(self._delta_dir.glob(f"*{_CORRUPT_SUFFIX}"))) + len(
                list(self.root.glob(f"*{_CORRUPT_SUFFIX}"))
            )
            return {
                "checkpoint_lsn": self._checkpoint_lsn,
                "journal_bytes_reclaimed": max(
                    0, journal_before - self._journal.size_bytes()
                ),
                "orphan_deltas_removed": orphans,
                "corrupt_files_kept": corrupt,
            }

    def flush(self) -> None:
        """Force journal bytes to disk (only meaningful with
        ``sync=False``)."""
        self._journal.flush()

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "ScenarioCatalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"ScenarioCatalog({str(self.root)!r}, "
                f"{len(self._scenarios)} scenarios, "
                f"generation {self._generation})"
            )
