"""Failpoint registry: deterministic fault injection for durability tests.

The durability layer is only trustworthy if its recovery paths are
*exercised*, not just written.  This module provides named **failpoints**
threaded through the hot I/O sites (``ChunkStore.read``/``write``,
``save_warehouse``/``load_warehouse``, the MDX cell evaluator).  Production
code calls :func:`inject_io_fault` at each site; the call is a no-op unless
a test (or the ``REPRO_FAULTS`` environment variable / ``--faults`` CLI
flag) has *armed* that failpoint.

Arming modes
------------

``fail_with(name, exc)``
    Every hit raises (a fresh copy of) ``exc``.
``fail_after(name, n)``
    The *n*-th hit raises; earlier hits pass.  ``n=1`` fires immediately.
``fail_transient(name, times)``
    The first ``times`` hits raise :class:`~repro.errors.TransientFaultError`
    (retryable); later hits pass — this is what proves the
    retry-with-backoff wrappers actually recover.
``fail_probabilistic(name, p, seed)``
    Each hit raises with probability ``p`` from a seeded (deterministic)
    generator; the same seed replays the same crash schedule.

Spec strings
------------

``REPRO_FAULTS`` / ``--faults`` accept a ``;``-separated list of
``<failpoint>:<mode>`` entries::

    io.save.cells:after=2;chunk.read:prob=0.25@seed=7;io.load.schema:always
    mdx.cell:transient=3

The special spec ``ci-matrix`` arms nothing by itself — it is a marker the
test suite recognises to widen the fault matrix (see
``tests/test_fault_matrix.py``).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import FaultInjectedError, TransientFaultError
from repro.lint.lockdep import LockProtocol, make_lock

__all__ = [
    "FAULTS",
    "FaultRegistry",
    "failpoint_names",
    "inject_io_fault",
    "register_failpoint",
    "with_retries",
]

T = TypeVar("T")

#: Failpoints registered by the instrumented modules.  Arming an unknown
#: name is an error: it catches typos that would otherwise make a fault
#: test silently vacuous.
_KNOWN_FAILPOINTS: set[str] = set()


def register_failpoint(name: str) -> str:
    """Declare a failpoint name (called at import time by instrumented
    modules); returns the name so it can double as a constant."""
    _KNOWN_FAILPOINTS.add(name)
    return name


def failpoint_names() -> tuple[str, ...]:
    """All registered failpoint names, sorted (the fault-matrix domain)."""
    return tuple(sorted(_KNOWN_FAILPOINTS))


@dataclass
class _Arming:
    """One armed failpoint: decides, per hit, whether to raise."""

    failpoint: str
    mode: str  # "always" | "after" | "transient" | "prob"
    count: int = 0  # for after= / transient=
    probability: float = 0.0
    rng: random.Random | None = None
    exc_factory: Callable[[str], BaseException] | None = None
    hits: int = 0
    fired: int = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.mode == "always":
            return True
        if self.mode == "after":
            return self.hits == self.count
        if self.mode == "transient":
            return self.hits <= self.count
        if self.mode == "prob":
            assert self.rng is not None
            return self.rng.random() < self.probability
        raise AssertionError(f"unknown fault mode {self.mode!r}")

    def make_exception(self) -> BaseException:
        if self.exc_factory is not None:
            return self.exc_factory(self.failpoint)
        if self.mode == "transient":
            return TransientFaultError(self.failpoint)
        return FaultInjectedError(self.failpoint)


@dataclass
class FaultRegistry:
    """Holds the armed failpoints; the module-level :data:`FAULTS` is the
    process-wide instance.

    Thread-safety: arming, disarming, and hit/fired counting are atomic
    under one registry lock, so a ``transient=N`` failpoint hammered from
    many threads fires *exactly* N times — per-hit decisions
    (:meth:`_Arming.should_fire`) and the fired increment happen in one
    critical section.  The disarmed fast path stays a single lock-free
    dict read (safe under the GIL)."""

    _armed: dict[str, _Arming] = field(default_factory=dict)
    _lock: LockProtocol = field(
        default_factory=lambda: make_lock("FaultRegistry._lock"),
        repr=False,
        compare=False,
    )

    # -- arming -----------------------------------------------------------------

    def _check_known(self, failpoint: str) -> None:
        if failpoint not in _KNOWN_FAILPOINTS:
            known = ", ".join(failpoint_names()) or "<none registered>"
            raise ValueError(
                f"unknown failpoint {failpoint!r}; registered: {known}"
            )

    def fail_with(
        self,
        failpoint: str,
        exc_factory: Callable[[str], BaseException] | None = None,
    ) -> None:
        """Arm ``failpoint`` to raise on every hit."""
        self._check_known(failpoint)
        with self._lock:
            self._armed[failpoint] = _Arming(
                failpoint, "always", exc_factory=exc_factory
            )

    def fail_after(
        self,
        failpoint: str,
        n: int,
        exc_factory: Callable[[str], BaseException] | None = None,
    ) -> None:
        """Arm ``failpoint`` to raise on exactly the *n*-th hit (1-based)."""
        if n < 1:
            raise ValueError("fail_after requires n >= 1")
        self._check_known(failpoint)
        with self._lock:
            self._armed[failpoint] = _Arming(
                failpoint, "after", count=n, exc_factory=exc_factory
            )

    def fail_transient(self, failpoint: str, times: int = 1) -> None:
        """Arm ``failpoint`` to raise a retryable
        :class:`~repro.errors.TransientFaultError` for the first ``times``
        hits, then succeed."""
        if times < 1:
            raise ValueError("fail_transient requires times >= 1")
        self._check_known(failpoint)
        with self._lock:
            self._armed[failpoint] = _Arming(
                failpoint, "transient", count=times
            )

    def fail_probabilistic(
        self, failpoint: str, probability: float, seed: int = 0
    ) -> None:
        """Arm ``failpoint`` to raise with ``probability`` per hit, from a
        seeded deterministic generator."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._check_known(failpoint)
        with self._lock:
            self._armed[failpoint] = _Arming(
                failpoint,
                "prob",
                probability=probability,
                rng=random.Random(seed),
            )

    def disarm(self, failpoint: str) -> None:
        with self._lock:
            self._armed.pop(failpoint, None)

    def clear(self) -> None:
        """Disarm everything (test teardown)."""
        with self._lock:
            self._armed.clear()

    # -- introspection ----------------------------------------------------------

    def armed(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._armed))

    def fired_count(self, failpoint: str) -> int:
        with self._lock:
            arming = self._armed.get(failpoint)
            return 0 if arming is None else arming.fired

    def fired_counts(self) -> dict[str, int]:
        """Fired counts of every armed failpoint (including zero) — the
        warehouse snapshots this around a query to attribute fault events
        to one evaluation."""
        with self._lock:
            return {
                name: arming.fired for name, arming in self._armed.items()
            }

    # -- the hot-path hook --------------------------------------------------------

    def hit(self, failpoint: str) -> None:
        """Raise if ``failpoint`` is armed and due; no-op otherwise.

        The fast path (nothing armed) is one dict lookup, so leaving the
        hooks in production code costs nothing measurable.
        """
        if self._armed.get(failpoint) is None:
            return
        with self._lock:
            arming = self._armed.get(failpoint)
            if arming is None:
                return  # disarmed between the unlocked check and here
            if not arming.should_fire():
                return
            arming.fired += 1
            exc = arming.make_exception()
        from repro.obs.metrics import METRICS

        METRICS.counter("faults_fired_total", failpoint=failpoint).inc()
        raise exc

    # -- spec parsing ------------------------------------------------------------

    def arm_from_spec(self, spec: str) -> tuple[str, ...]:
        """Arm failpoints from a ``REPRO_FAULTS``-style spec string;
        returns the names armed.  ``ci-matrix`` (and empty) arm nothing."""
        armed: list[str] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry or entry == "ci-matrix":
                continue
            if ":" not in entry:
                raise ValueError(
                    f"bad fault spec entry {entry!r}; expected "
                    "'<failpoint>:<always|after=N|transient=N|prob=P[@seed=S]>'"
                )
            name, mode = entry.split(":", 1)
            name, mode = name.strip(), mode.strip()
            if mode == "always":
                self.fail_with(name)
            elif mode.startswith("after="):
                self.fail_after(name, int(mode[len("after="):]))
            elif mode.startswith("transient="):
                self.fail_transient(name, int(mode[len("transient="):]))
            elif mode.startswith("prob="):
                prob_part = mode[len("prob="):]
                seed = 0
                if "@seed=" in prob_part:
                    prob_part, seed_part = prob_part.split("@seed=", 1)
                    seed = int(seed_part)
                self.fail_probabilistic(name, float(prob_part), seed=seed)
            else:
                raise ValueError(f"bad fault mode {mode!r} in entry {entry!r}")
            armed.append(name)
        return tuple(armed)

    def arm_from_env(self, env: str = "REPRO_FAULTS") -> tuple[str, ...]:
        spec = os.environ.get(env, "")
        return self.arm_from_spec(spec) if spec else ()


#: The process-wide registry; instrumented modules call
#: ``FAULTS.hit(<name>)`` via :func:`inject_io_fault`.
FAULTS = FaultRegistry()


def inject_io_fault(failpoint: str) -> None:
    """The instrumentation hook: raise if ``failpoint`` is armed and due.

    This is the single call production code places at each fault site.
    """
    FAULTS.hit(failpoint)


def with_retries(
    operation: Callable[[], T],
    *,
    attempts: int = 4,
    base_delay: float = 0.005,
    max_delay: float = 0.25,
    retry_on: tuple[type[BaseException], ...] = (TransientFaultError, OSError),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``operation``, retrying transient failures with exponential
    backoff (``base_delay * 2**attempt``, capped at ``max_delay``).

    Terminal faults (anything outside ``retry_on`` — notably a plain
    :class:`~repro.errors.FaultInjectedError`) propagate immediately: a
    simulated crash must not be retried into oblivion.  The last transient
    error re-raises once ``attempts`` is exhausted.
    """
    if attempts < 1:
        raise ValueError("with_retries requires attempts >= 1")
    delay = base_delay
    for attempt in range(attempts):
        try:
            return operation()
        except retry_on:
            if attempt == attempts - 1:
                raise
            sleep(min(delay, max_delay))
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover
