"""``python -m repro`` — demonstration and analysis entry points.

Without arguments, prints the library version and runs the paper's headline
what-if query on the running example, so a fresh install can verify itself
in one command.  ``python -m repro analyze <query-file>`` runs the static
analyzer (:mod:`repro.analysis`) over an extended-MDX query without
executing it; ``python -m repro query <query-file>`` executes one, with an
optional ``--deadline-ms``/``--max-cells`` budget.  Use ``python -m
repro.bench all`` for the experiment harness and the scripts under
``examples/`` for full walkthroughs.

Exit-code contract (shared with ``analyze``): **0** = clean, **1** =
warnings under ``--strict`` or a *partial* (budget-degraded) query result,
**2** = errors — including IO, corruption, and format failures, which are
reported as a one-line message on stderr rather than a traceback.

Fault injection: ``--faults '<failpoint>:<mode>;...'`` (or the
``REPRO_FAULTS`` environment variable) arms the failpoint registry
(:mod:`repro.faults`) before the command runs.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import QueryBudget, Warehouse
from repro.errors import ReproError
from repro.faults import FAULTS
from repro.workload import build_running_example


def _build_warehouse(workload: str) -> Warehouse:
    if workload == "running":
        example = build_running_example()
        return Warehouse(example.schema, example.cube)
    if workload == "workforce":
        from repro.workload.workforce import build_workforce

        return build_workforce().warehouse
    raise ValueError(f"unknown workload {workload!r}")


def _read_query_text(query_file: str) -> "str | None":
    """Read query text from a file or stdin ('-'); None (and a one-line
    stderr message) when the source is unreadable."""
    if query_file == "-":
        return sys.stdin.read()
    try:
        with open(query_file, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return None


def _cmd_analyze(args: argparse.Namespace) -> int:
    """The ``analyze`` subcommand.

    Exit-code contract: 0 = clean (or warnings without ``--strict``),
    1 = warnings under ``--strict``, 2 = error-level findings.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    report = warehouse.analyze(text)
    if args.json:
        print(report.to_json(indent=2))
    else:
        source = "<stdin>" if args.query_file == "-" else args.query_file
        if report.is_clean:
            print(f"{source}: no diagnostics")
        else:
            for diagnostic in report:
                print(f"{source}: {diagnostic.to_text()}")
            print(
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
    return report.exit_code(strict=args.strict)


def _budget_from_args(args: argparse.Namespace) -> "QueryBudget | None":
    deadline_ms = getattr(args, "deadline_ms", None)
    max_cells = getattr(args, "max_cells", None)
    if deadline_ms is None and max_cells is None:
        return None
    return QueryBudget(deadline_ms=deadline_ms, max_cells=max_cells)


def _cmd_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: execute an extended-MDX query.

    Exit-code contract: 0 = complete result, 1 = partial (budget-degraded)
    result, 2 = any error.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    result = warehouse.query(
        text, analyze=not args.no_analyze, budget=_budget_from_args(args)
    )
    if args.csv:
        print(result.to_csv())
        # Engine counters as trailing comment lines, so the grid part of
        # the stream stays parseable as plain CSV (see docs/performance.md).
        for key in sorted(result.stats):
            print(f"# {key},{result.stats[key]}")
    else:
        print(result.to_text())
    if result.is_partial:
        for degradation in result.degradations:
            print(f"repro: partial result: {degradation.detail}", file=sys.stderr)
        return 1
    return 0


def _demo(budget: "QueryBudget | None" = None) -> int:
    print(f"repro {repro.__version__} — What-if OLAP queries "
          "with changing dimensions (ICDE 2008 reproduction)\n")
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube)
    print("Joe's instances:", ", ".join(
        f"{i.qualified_name} {i.validity.sorted_moments()}"
        for i in example.org.instances_of("Joe")
    ))
    print("\nWITH PERSPECTIVE {(Feb), (Apr)} FOR Organization "
          "DYNAMIC FORWARD VISUAL ...\n")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
        """,
        budget=budget,
    )
    print(result.to_text())
    print("\nNext steps: python -m repro analyze <query-file> | "
          "python -m repro query <query-file> | python -m repro.bench all")
    return 1 if result.is_partial else 0


def _arm_faults(args: argparse.Namespace) -> "int | None":
    """Arm failpoints from --faults and REPRO_FAULTS; 2 on a bad spec."""
    try:
        FAULTS.arm_from_env()
        if getattr(args, "faults", None):
            FAULTS.arm_from_spec(args.faults)
    except ValueError as exc:
        print(f"repro: bad --faults spec: {exc}", file=sys.stderr)
        return 2
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm fault-injection failpoints, e.g. "
        "'io.save.cells:after=2;chunk.read:prob=0.1@seed=7' "
        "(also honours the REPRO_FAULTS environment variable)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="wall-clock query budget in milliseconds; on breach the query "
        "returns a partial (⊥-padded) result and the process exits 1",
    )
    subparsers = parser.add_subparsers(dest="command")
    analyze = subparsers.add_parser(
        "analyze",
        help="statically analyze an extended-MDX query without executing it",
        description=(
            "Run the static analyzer over a query file (or stdin with '-') "
            "and print its diagnostics.  Exit codes: 0 = clean, 1 = "
            "warnings under --strict, 2 = errors."
        ),
    )
    analyze.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    analyze.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to analyze against (default: the paper's running "
        "example)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the report contains warnings",
    )
    query = subparsers.add_parser(
        "query",
        help="execute an extended-MDX query (optionally under a budget)",
        description=(
            "Execute a query file (or stdin with '-') and print the result "
            "grid.  Exit codes: 0 = complete result, 1 = partial result "
            "(query budget breached; unevaluated cells print as ⊥/-), "
            "2 = errors."
        ),
    )
    query.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    query.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to query (default: the paper's running example)",
    )
    query.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        default=argparse.SUPPRESS,
        help="wall-clock query budget in milliseconds",
    )
    query.add_argument(
        "--max-cells",
        type=int,
        metavar="N",
        help="cell-evaluation budget; on breach the result is partial",
    )
    query.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a text grid"
    )
    query.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the static analyzer before execution",
    )
    args = parser.parse_args(argv)
    if args.version:
        print(repro.__version__)
        return 0
    failed = _arm_faults(args)
    if failed is not None:
        return failed
    try:
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "query":
            return _cmd_query(args)
        return _demo(budget=_budget_from_args(args))
    except (ReproError, OSError) as exc:
        # IO, corruption, format, and query errors share one contract:
        # a single-line message on stderr and exit code 2 — never a
        # traceback for a failure mode the tool itself defines.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
