"""``python -m repro`` — demonstration and analysis entry points.

Without arguments, prints the library version and runs the paper's headline
what-if query on the running example, so a fresh install can verify itself
in one command.  ``python -m repro analyze <query-file>`` runs the static
analyzer (:mod:`repro.analysis`) over an extended-MDX query without
executing it.  Use ``python -m repro.bench all`` for the experiment harness
and the scripts under ``examples/`` for full walkthroughs.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import Warehouse
from repro.workload import build_running_example


def _build_warehouse(workload: str) -> Warehouse:
    if workload == "running":
        example = build_running_example()
        return Warehouse(example.schema, example.cube)
    if workload == "workforce":
        from repro.workload.workforce import build_workforce

        return build_workforce().warehouse
    raise ValueError(f"unknown workload {workload!r}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    """The ``analyze`` subcommand.

    Exit-code contract: 0 = clean (or warnings without ``--strict``),
    1 = warnings under ``--strict``, 2 = error-level findings.
    """
    if args.query_file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.query_file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            print(f"repro analyze: {exc}", file=sys.stderr)
            return 2
    warehouse = _build_warehouse(args.workload)
    report = warehouse.analyze(text)
    if args.json:
        print(report.to_json(indent=2))
    else:
        source = "<stdin>" if args.query_file == "-" else args.query_file
        if report.is_clean:
            print(f"{source}: no diagnostics")
        else:
            for diagnostic in report:
                print(f"{source}: {diagnostic.to_text()}")
            print(
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
    return report.exit_code(strict=args.strict)


def _demo() -> int:
    print(f"repro {repro.__version__} — What-if OLAP queries "
          "with changing dimensions (ICDE 2008 reproduction)\n")
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube)
    print("Joe's instances:", ", ".join(
        f"{i.qualified_name} {i.validity.sorted_moments()}"
        for i in example.org.instances_of("Joe")
    ))
    print("\nWITH PERSPECTIVE {(Feb), (Apr)} FOR Organization "
          "DYNAMIC FORWARD VISUAL ...\n")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
        """
    )
    print(result.to_text())
    print("\nNext steps: python -m repro analyze <query-file> | "
          "python -m repro.bench all | python examples/quickstart.py")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    subparsers = parser.add_subparsers(dest="command")
    analyze = subparsers.add_parser(
        "analyze",
        help="statically analyze an extended-MDX query without executing it",
        description=(
            "Run the static analyzer over a query file (or stdin with '-') "
            "and print its diagnostics.  Exit codes: 0 = clean, 1 = "
            "warnings under --strict, 2 = errors."
        ),
    )
    analyze.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    analyze.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to analyze against (default: the paper's running "
        "example)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the report contains warnings",
    )
    args = parser.parse_args(argv)
    if args.version:
        print(repro.__version__)
        return 0
    if args.command == "analyze":
        return _cmd_analyze(args)
    return _demo()


if __name__ == "__main__":
    sys.exit(main())
