"""``python -m repro`` — a tiny demonstration entry point.

Prints the library version and runs the paper's headline what-if query on
the running example, so a fresh install can verify itself in one command.
Use ``python -m repro.bench all`` for the experiment harness and the
scripts under ``examples/`` for full walkthroughs.
"""

from __future__ import annotations

import argparse

import repro
from repro import Warehouse
from repro.workload import build_running_example


def main() -> None:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    args = parser.parse_args()
    if args.version:
        print(repro.__version__)
        return

    print(f"repro {repro.__version__} — What-if OLAP queries "
          "with changing dimensions (ICDE 2008 reproduction)\n")
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube)
    print("Joe's instances:", ", ".join(
        f"{i.qualified_name} {i.validity.sorted_moments()}"
        for i in example.org.instances_of("Joe")
    ))
    print("\nWITH PERSPECTIVE {(Feb), (Apr)} FOR Organization "
          "DYNAMIC FORWARD VISUAL ...\n")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
        """
    )
    print(result.to_text())
    print("\nNext steps: python -m repro.bench all | python examples/quickstart.py")


if __name__ == "__main__":
    main()
