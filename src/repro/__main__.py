"""``python -m repro`` — demonstration and analysis entry points.

Without arguments, prints the library version and runs the paper's headline
what-if query on the running example, so a fresh install can verify itself
in one command.  ``python -m repro analyze <query-file>`` runs the static
analyzer (:mod:`repro.analysis`) over an extended-MDX query without
executing it; ``python -m repro query <query-file>`` executes one, with an
optional ``--deadline-ms``/``--max-cells`` budget and observability flags
(``--profile`` for phase timings, ``--stats`` for engine counters,
``--slow-ms`` for the slow-query log — all on stderr, keeping stdout pure
grid/CSV); ``python -m repro explain <query-file>`` prints the analyzed
plan with rollup-index scope estimates without executing.  Use ``python
-m repro.bench all`` for the experiment harness and the scripts under
``examples/`` for full walkthroughs.

Exit-code contract (shared with ``analyze``): **0** = clean, **1** =
warnings under ``--strict`` or a *partial* (budget-degraded) query result,
**2** = errors — including IO, corruption, and format failures, which are
reported as a one-line message on stderr rather than a traceback.

Fault injection: ``--faults '<failpoint>:<mode>;...'`` (or the
``REPRO_FAULTS`` environment variable) arms the failpoint registry
(:mod:`repro.faults`) before the command runs.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import QueryBudget, Warehouse
from repro.errors import ReproError
from repro.faults import FAULTS
from repro.workload import build_running_example


def _build_warehouse(workload: str) -> Warehouse:
    if workload == "running":
        example = build_running_example()
        return Warehouse(example.schema, example.cube)
    if workload == "workforce":
        from repro.workload.workforce import build_workforce

        return build_workforce().warehouse
    raise ValueError(f"unknown workload {workload!r}")


def _read_query_text(query_file: str) -> "str | None":
    """Read query text from a file or stdin ('-'); None (and a one-line
    stderr message) when the source is unreadable."""
    if query_file == "-":
        return sys.stdin.read()
    try:
        with open(query_file, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return None


def _cmd_analyze(args: argparse.Namespace) -> int:
    """The ``analyze`` subcommand.

    Exit-code contract: 0 = clean (or warnings without ``--strict``),
    1 = warnings under ``--strict``, 2 = error-level findings.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    report = warehouse.analyze(text)
    if args.json:
        print(report.to_json(indent=2))
    else:
        source = "<stdin>" if args.query_file == "-" else args.query_file
        if report.is_clean:
            print(f"{source}: no diagnostics")
        else:
            for diagnostic in report:
                print(f"{source}: {diagnostic.to_text()}")
            print(
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
    return report.exit_code(strict=args.strict)


def _budget_from_args(args: argparse.Namespace) -> "QueryBudget | None":
    deadline_ms = getattr(args, "deadline_ms", None)
    max_cells = getattr(args, "max_cells", None)
    if deadline_ms is None and max_cells is None:
        return None
    return QueryBudget(deadline_ms=deadline_ms, max_cells=max_cells)


def _cmd_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: execute an extended-MDX query.

    Exit-code contract: 0 = complete result, 1 = partial (budget-degraded)
    result, 2 = any error.  Stdout carries only the result grid (text,
    CSV, or — under ``--profile --json`` — the profile document); engine
    counters (``--stats``), the profile table (``--profile``), and the
    slow-query log (``--slow-ms``) go to stderr.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    if args.slow_ms is not None:
        warehouse.slow_log.threshold_ms = args.slow_ms
    budget = _budget_from_args(args)
    if args.profile:
        from repro.obs.trace import tracing

        with tracing():
            result = warehouse.query(
                text, analyze=not args.no_analyze, budget=budget
            )
    else:
        result = warehouse.query(
            text, analyze=not args.no_analyze, budget=budget
        )
    if args.profile and args.json:
        import json

        print(json.dumps(result.profile.to_dict(), indent=2))
    elif args.csv:
        # Pure CSV on stdout: counters moved behind --stats (stderr) so the
        # stream pipes straight into a CSV parser.
        print(result.to_csv())
    else:
        print(result.to_text())
    if args.stats:
        for key in sorted(result.stats):
            print(f"# {key},{result.stats[key]}", file=sys.stderr)
    if args.profile and not args.json:
        print(result.profile.render(), file=sys.stderr)
    if args.slow_ms is not None:
        print(warehouse.slow_log.dump(), file=sys.stderr)
    if result.is_partial:
        for degradation in result.degradations:
            print(f"repro: partial result: {degradation.detail}", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """The ``explain`` subcommand: print the analyzed plan of a query —
    scenario pipeline, diagnostics, axis shapes, and rollup-index scope
    estimates — without filling the grid.

    Exit-code contract: 0 = explained (even when the analyzer flags the
    query as unexecutable; the report says so), 2 = any error.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    if args.json:
        import json

        from repro.obs.explain import explain_report

        print(json.dumps(explain_report(warehouse, text), indent=2))
    else:
        print(warehouse.explain(text))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run a batch of queries concurrently
    through the :class:`~repro.service.QueryService`.

    Reads ``;``-separated extended-MDX statements from a file or stdin,
    submits them all up front (each pinned to a snapshot at submission
    time), then prints every grid in submission order.  Exit-code
    contract: 0 = all complete, 1 = any partial (budget-degraded) or
    shed result, 2 = any query error.
    """
    from repro.service import QueryService

    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    statements = [part.strip() for part in text.split(";") if part.strip()]
    if not statements:
        print("repro: no queries to serve", file=sys.stderr)
        return 2
    warehouse = _build_warehouse(args.workload)
    budget = _budget_from_args(args)
    worst = 0
    with QueryService(
        warehouse,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_ms=getattr(args, "deadline_ms", None),
    ) as service:
        tickets = []
        for statement in statements:
            try:
                tickets.append(
                    service.submit(
                        statement,
                        analyze=not args.no_analyze,
                        budget=budget,
                    )
                )
            except ReproError as exc:
                tickets.append(exc)  # shed at admission; report in order
        for index, ticket in enumerate(tickets, start=1):
            print(f"-- query {index}/{len(tickets)} --")
            if isinstance(ticket, ReproError):
                print(f"repro: shed: {ticket}", file=sys.stderr)
                worst = max(worst, 1)
                continue
            try:
                result = ticket.result()
            except ReproError as exc:
                print(f"repro: {exc}", file=sys.stderr)
                worst = 2
                continue
            print(result.to_csv() if args.csv else result.to_text())
            if result.is_partial:
                for degradation in result.degradations:
                    print(
                        f"repro: partial result: {degradation.detail}",
                        file=sys.stderr,
                    )
                worst = max(worst, 1)
    return worst


def _cmd_stress(args: argparse.Namespace) -> int:
    """The ``stress`` subcommand: the concurrency chaos harness.

    Races concurrent queries against live mutations (and, unless
    ``--no-faults``, armed failpoints), then replays every completed
    query serially against its pinned snapshot and compares grids
    bit-for-bit.  Exit-code contract: 0 = all invariants held, 2 = any
    violation (untyped error, mismatch vs serial replay, or deadlock).
    """
    from repro.service.stress import StressConfig, run_stress

    if args.smoke:
        config = StressConfig.smoke(seed=args.seed, fault_mix=not args.no_faults)
    else:
        config = StressConfig(
            workers=args.workers,
            duration_s=args.duration,
            seed=args.seed,
            fault_mix=not args.no_faults,
        )
    report = run_stress(config)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.passed else 2


def _cmd_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: reprolint over source trees.

    Exit-code contract mirrors ``analyze``: 0 = clean, 1 = warnings
    under ``--strict``, 2 = any error-severity finding (or a bad
    baseline/missing path).
    """
    from repro.lint.cli import lint_main

    return lint_main(
        args.paths,
        baseline_path=args.baseline,
        json_output=args.json,
        strict=args.strict,
    )


def _demo(budget: "QueryBudget | None" = None) -> int:
    print(f"repro {repro.__version__} — What-if OLAP queries "
          "with changing dimensions (ICDE 2008 reproduction)\n")
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube)
    print("Joe's instances:", ", ".join(
        f"{i.qualified_name} {i.validity.sorted_moments()}"
        for i in example.org.instances_of("Joe")
    ))
    print("\nWITH PERSPECTIVE {(Feb), (Apr)} FOR Organization "
          "DYNAMIC FORWARD VISUAL ...\n")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
        """,
        budget=budget,
    )
    print(result.to_text())
    print("\nNext steps: python -m repro analyze <query-file> | "
          "python -m repro query <query-file> | python -m repro.bench all")
    return 1 if result.is_partial else 0


def _arm_faults(args: argparse.Namespace) -> "int | None":
    """Arm failpoints from --faults and REPRO_FAULTS; 2 on a bad spec."""
    try:
        FAULTS.arm_from_env()
        if getattr(args, "faults", None):
            FAULTS.arm_from_spec(args.faults)
    except ValueError as exc:
        print(f"repro: bad --faults spec: {exc}", file=sys.stderr)
        return 2
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm fault-injection failpoints, e.g. "
        "'io.save.cells:after=2;chunk.read:prob=0.1@seed=7' "
        "(also honours the REPRO_FAULTS environment variable)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="wall-clock query budget in milliseconds; on breach the query "
        "returns a partial (⊥-padded) result and the process exits 1",
    )
    subparsers = parser.add_subparsers(dest="command")
    analyze = subparsers.add_parser(
        "analyze",
        help="statically analyze an extended-MDX query without executing it",
        description=(
            "Run the static analyzer over a query file (or stdin with '-') "
            "and print its diagnostics.  Exit codes: 0 = clean, 1 = "
            "warnings under --strict, 2 = errors."
        ),
    )
    analyze.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    analyze.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to analyze against (default: the paper's running "
        "example)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the report contains warnings",
    )
    query = subparsers.add_parser(
        "query",
        help="execute an extended-MDX query (optionally under a budget)",
        description=(
            "Execute a query file (or stdin with '-') and print the result "
            "grid.  Exit codes: 0 = complete result, 1 = partial result "
            "(query budget breached; unevaluated cells print as ⊥/-), "
            "2 = errors."
        ),
    )
    query.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    query.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to query (default: the paper's running example)",
    )
    query.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        default=argparse.SUPPRESS,
        help="wall-clock query budget in milliseconds",
    )
    query.add_argument(
        "--max-cells",
        type=int,
        metavar="N",
        help="cell-evaluation budget; on breach the result is partial",
    )
    query.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a text grid"
    )
    query.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the static analyzer before execution",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print per-query engine counters to stderr as '# key,value' lines",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="trace the query and print a phase-timing profile to stderr",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="with --profile, emit the profile as a JSON document on stdout "
        "instead of the result grid",
    )
    query.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="set the slow-query log threshold and dump the log to stderr "
        "after the query (0 records everything)",
    )
    explain = subparsers.add_parser(
        "explain",
        help="print a query's analyzed plan and scope estimates without "
        "executing it",
        description=(
            "EXPLAIN a query file (or stdin with '-'): the scenario "
            "pipeline (algebra operators), analyzer diagnostics, axis "
            "shapes, and rollup-index scope-size estimates — the grid is "
            "never filled.  Exit codes: 0 = explained, 2 = errors."
        ),
    )
    explain.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    explain.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to explain against (default: the paper's running "
        "example)",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the structured EXPLAIN report as JSON",
    )
    serve = subparsers.add_parser(
        "serve",
        help="run ;-separated queries concurrently through the query service",
        description=(
            "Read ;-separated extended-MDX statements from a file (or "
            "stdin with '-'), submit them all through a bounded worker "
            "pool — each pinned to a snapshot at submission — and print "
            "the grids in submission order.  Exit codes: 0 = all "
            "complete, 1 = any partial or shed, 2 = any error."
        ),
    )
    serve.add_argument(
        "query_file",
        nargs="?",
        default="-",
        help="path to a file of ;-separated queries, or - for stdin "
        "(default)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker threads (default: 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="admission-queue bound; beyond it submissions are shed "
        "(default: 16)",
    )
    serve.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to serve (default: the paper's running example)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        default=argparse.SUPPRESS,
        help="per-query deadline; queue wait counts against it",
    )
    serve.add_argument(
        "--max-cells",
        type=int,
        metavar="N",
        help="per-query cell-evaluation budget",
    )
    serve.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text grids"
    )
    serve.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the static analyzer before execution",
    )
    stress = subparsers.add_parser(
        "stress",
        help="chaos-test the query service: concurrent queries vs "
        "mutations vs faults",
        description=(
            "Race client threads, cube mutators, and (by default) armed "
            "failpoints against one warehouse, then verify snapshot "
            "isolation by replaying every completed query serially "
            "against its pinned snapshot — grids must match "
            "bit-for-bit and every observed error must be typed.  "
            "Exit codes: 0 = all invariants held, 2 = any violation."
        ),
    )
    stress.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 4 workers, ~1s (same invariants)",
    )
    stress.add_argument(
        "--workers",
        type=int,
        default=8,
        metavar="N",
        help="client threads (default: 8; ignored with --smoke)",
    )
    stress.add_argument(
        "--duration",
        type=float,
        default=3.0,
        metavar="S",
        help="storm duration in seconds (default: 3; ignored with --smoke)",
    )
    stress.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for workload/mutation choices (default: 0)",
    )
    stress.add_argument(
        "--no-faults",
        action="store_true",
        help="run without arming failpoints during the storm",
    )
    stress.add_argument(
        "--json",
        action="store_true",
        help="emit the stress report as JSON",
    )
    lint = subparsers.add_parser(
        "lint",
        help="run reprolint: concurrency + hygiene checks over source trees",
        description=(
            "Run the self-hosted static analyzer (lock-order, shared-state "
            "guards, failpoint hygiene, metrics/span hygiene, error "
            "taxonomy) over one or more files/directories.  Exit codes: "
            "0 = clean, 1 = warnings with --strict, 2 = errors."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings (each entry needs a "
        "justification); stale entries are reported as RPL002",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings (errors always exit 2)",
    )
    args = parser.parse_args(argv)
    if args.version:
        print(repro.__version__)
        return 0
    failed = _arm_faults(args)
    if failed is not None:
        return failed
    try:
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "stress":
            return _cmd_stress(args)
        if args.command == "lint":
            return _cmd_lint(args)
        return _demo(budget=_budget_from_args(args))
    except (ReproError, OSError) as exc:
        # IO, corruption, format, and query errors share one contract:
        # a single-line message on stderr and exit code 2 — never a
        # traceback for a failure mode the tool itself defines.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
