"""``python -m repro`` — demonstration and analysis entry points.

Without arguments, prints the library version and runs the paper's headline
what-if query on the running example, so a fresh install can verify itself
in one command.  ``python -m repro analyze <query-file>`` runs the static
analyzer (:mod:`repro.analysis`) over an extended-MDX query without
executing it; ``python -m repro query <query-file>`` executes one, with an
optional ``--deadline-ms``/``--max-cells`` budget and observability flags
(``--profile`` for phase timings, ``--stats`` for engine counters,
``--slow-ms`` for the slow-query log — all on stderr, keeping stdout pure
grid/CSV); ``python -m repro explain <query-file>`` prints the analyzed
plan with rollup-index scope estimates without executing.  Use ``python
-m repro.bench all`` for the experiment harness and the scripts under
``examples/`` for full walkthroughs.

Exit-code contract (shared with ``analyze``): **0** = clean, **1** =
warnings under ``--strict`` or a *partial* (budget-degraded) query result,
**2** = errors — including IO, corruption, and format failures, which are
reported as a one-line message on stderr rather than a traceback.

Fault injection: ``--faults '<failpoint>:<mode>;...'`` (or the
``REPRO_FAULTS`` environment variable) arms the failpoint registry
(:mod:`repro.faults`) before the command runs.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import QueryBudget, Warehouse
from repro.errors import ReproError
from repro.faults import FAULTS
from repro.workload import build_running_example


def _build_warehouse(workload: str) -> Warehouse:
    if workload == "running":
        example = build_running_example()
        return Warehouse(example.schema, example.cube)
    if workload == "workforce":
        from repro.workload.workforce import build_workforce

        return build_workforce().warehouse
    raise ValueError(f"unknown workload {workload!r}")


def _read_query_text(query_file: str) -> "str | None":
    """Read query text from a file or stdin ('-'); None (and a one-line
    stderr message) when the source is unreadable."""
    if query_file == "-":
        return sys.stdin.read()
    try:
        with open(query_file, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return None


def _cmd_analyze(args: argparse.Namespace) -> int:
    """The ``analyze`` subcommand.

    Exit-code contract: 0 = clean (or warnings without ``--strict``),
    1 = warnings under ``--strict``, 2 = error-level findings.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    report = warehouse.analyze(text)
    if args.json:
        print(report.to_json(indent=2))
    else:
        source = "<stdin>" if args.query_file == "-" else args.query_file
        if report.is_clean:
            print(f"{source}: no diagnostics")
        else:
            for diagnostic in report:
                print(f"{source}: {diagnostic.to_text()}")
            print(
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
    return report.exit_code(strict=args.strict)


def _budget_from_args(args: argparse.Namespace) -> "QueryBudget | None":
    deadline_ms = getattr(args, "deadline_ms", None)
    max_cells = getattr(args, "max_cells", None)
    if deadline_ms is None and max_cells is None:
        return None
    return QueryBudget(deadline_ms=deadline_ms, max_cells=max_cells)


def _cmd_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: execute an extended-MDX query.

    Exit-code contract: 0 = complete result, 1 = partial (budget-degraded)
    result, 2 = any error.  Stdout carries only the result grid (text,
    CSV, or — under ``--profile --json`` — the profile document); engine
    counters (``--stats``), the profile table (``--profile``), and the
    slow-query log (``--slow-ms``) go to stderr.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    if args.slow_ms is not None:
        warehouse.slow_log.threshold_ms = args.slow_ms
    budget = _budget_from_args(args)
    if args.profile:
        from repro.obs.trace import tracing

        with tracing():
            result = warehouse.query(
                text, analyze=not args.no_analyze, budget=budget
            )
    else:
        result = warehouse.query(
            text, analyze=not args.no_analyze, budget=budget
        )
    if args.profile and args.json:
        import json

        print(json.dumps(result.profile.to_dict(), indent=2))
    elif args.csv:
        # Pure CSV on stdout: counters moved behind --stats (stderr) so the
        # stream pipes straight into a CSV parser.
        print(result.to_csv())
    else:
        print(result.to_text())
    if args.stats:
        for key in sorted(result.stats):
            print(f"# {key},{result.stats[key]}", file=sys.stderr)
    if args.profile and not args.json:
        print(result.profile.render(), file=sys.stderr)
    if args.slow_ms is not None:
        print(warehouse.slow_log.dump(), file=sys.stderr)
    if result.is_partial:
        for degradation in result.degradations:
            print(f"repro: partial result: {degradation.detail}", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """The ``explain`` subcommand: print the analyzed plan of a query —
    scenario pipeline, diagnostics, axis shapes, and rollup-index scope
    estimates — without filling the grid.

    Exit-code contract: 0 = explained (even when the analyzer flags the
    query as unexecutable; the report says so), 2 = any error.
    """
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    warehouse = _build_warehouse(args.workload)
    if args.json:
        import json

        from repro.obs.explain import explain_report

        print(json.dumps(explain_report(warehouse, text), indent=2))
    else:
        print(warehouse.explain(text))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run a batch of queries concurrently
    through the :class:`~repro.service.QueryService`.

    Reads ``;``-separated extended-MDX statements from a file or stdin,
    submits them all up front (each pinned to a snapshot at submission
    time), then prints every grid in submission order.  Exit-code
    contract: 0 = all complete, 1 = any partial (budget-degraded) or
    shed result, 2 = any query error.
    """
    from repro.service import QueryService

    if args.http or args.shards is not None:
        return _cmd_serve_sharded(args)
    text = _read_query_text(args.query_file)
    if text is None:
        return 2
    statements = [part.strip() for part in text.split(";") if part.strip()]
    if not statements:
        print("repro: no queries to serve", file=sys.stderr)
        return 2
    warehouse = _build_warehouse(args.workload)
    budget = _budget_from_args(args)
    worst = 0
    with QueryService(
        warehouse,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_ms=getattr(args, "deadline_ms", None),
    ) as service:
        tickets = []
        for statement in statements:
            try:
                tickets.append(
                    service.submit(
                        statement,
                        analyze=not args.no_analyze,
                        budget=budget,
                    )
                )
            except ReproError as exc:
                tickets.append(exc)  # shed at admission; report in order
        for index, ticket in enumerate(tickets, start=1):
            print(f"-- query {index}/{len(tickets)} --")
            if isinstance(ticket, ReproError):
                print(f"repro: shed: {ticket}", file=sys.stderr)
                worst = max(worst, 1)
                continue
            try:
                result = ticket.result()
            except ReproError as exc:
                print(f"repro: {exc}", file=sys.stderr)
                worst = 2
                continue
            print(result.to_csv() if args.csv else result.to_text())
            if result.is_partial:
                for degradation in result.degradations:
                    print(
                        f"repro: partial result: {degradation.detail}",
                        file=sys.stderr,
                    )
                worst = max(worst, 1)
    return worst


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N`` / ``serve --http``: the multi-process tier.

    Each shard process owns a disjoint set of the varying dimension's
    members (co-residency via the merge-dependency graph); the
    coordinator scatter-gathers partial rollups and merges them with the
    strict bit-identical reduction.  Without ``--http``, runs the
    ;-separated statements through the coordinator and prints grids in
    order (exit codes as ``serve``); with ``--http``, serves the REST
    API until interrupted.
    """
    from repro.service import ShardedQueryService, TenantQuotas, serve_http

    statements: list[str] = []
    if not args.http:
        text = _read_query_text(args.query_file)
        if text is None:
            return 2
        statements = [part.strip() for part in text.split(";") if part.strip()]
        if not statements:
            print("repro: no queries to serve", file=sys.stderr)
            return 2
    n_shards = args.shards if args.shards is not None else 2
    worst = 0
    with ShardedQueryService(
        args.workload,
        n_shards=n_shards,
        chunk=args.chunk,
        degrade=args.degrade,
    ) as service:
        if args.http:
            plan = service.plan
            print(
                f"repro: serving {args.workload} over {plan.n_shards} "
                f"shard(s) of [{plan.dimension}] on "
                f"http://{args.host}:{args.port}",
                file=sys.stderr,
            )
            try:
                serve_http(
                    service,
                    args.host,
                    args.port,
                    quotas=TenantQuotas(max_inflight=args.max_inflight),
                )
            except KeyboardInterrupt:
                pass
            return 0
        for index, statement in enumerate(statements, start=1):
            print(f"-- query {index}/{len(statements)} --")
            try:
                result = service.execute(statement, analyze=not args.no_analyze)
            except ReproError as exc:
                print(f"repro: {exc}", file=sys.stderr)
                worst = 2
                continue
            print(result.to_csv() if args.csv else result.to_text())
    return worst


def _cmd_stress(args: argparse.Namespace) -> int:
    """The ``stress`` subcommand: the concurrency chaos harness.

    Races concurrent queries against live mutations (and, unless
    ``--no-faults``, armed failpoints), then replays every completed
    query serially against its pinned snapshot and compares grids
    bit-for-bit.  With ``--sharded``, runs the shard-kill storm instead:
    clients rotate degrade policies against the multi-process
    coordinator while random shards are SIGKILLed, then the pool must
    recover and reproduce the reference grids.  Exit-code contract: 0 =
    all invariants held, 2 = any violation (untyped error, mismatch vs
    serial replay, failed recovery, or deadlock).
    """
    from repro.service.stress import StressConfig, run_stress

    if args.sharded:
        from repro.service.stress import ShardStormConfig, run_shard_storm

        if args.smoke:
            storm_config = ShardStormConfig.smoke(seed=args.seed)
        else:
            storm_config = ShardStormConfig(
                clients=args.workers,
                duration_s=args.duration,
                seed=args.seed,
            )
        storm_report = run_shard_storm(storm_config)
        if args.json:
            import json

            print(json.dumps(storm_report.to_dict(), indent=2))
        else:
            print(storm_report.render())
        return 0 if storm_report.passed else 2
    if args.smoke:
        config = StressConfig.smoke(seed=args.seed, fault_mix=not args.no_faults)
    else:
        config = StressConfig(
            workers=args.workers,
            duration_s=args.duration,
            seed=args.seed,
            fault_mix=not args.no_faults,
        )
    report = run_stress(config)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.passed else 2


def _parse_cell_spec(spec: str) -> "tuple[tuple[str, ...], float | None]":
    """``coord,coord,...=value`` → (address, value); value ``null``/``-``
    tombstones the cell."""
    from repro.errors import CatalogError

    address_part, sep, value_part = spec.rpartition("=")
    if not sep or not address_part:
        raise CatalogError(
            f"bad --cell {spec!r}: expected 'coord,coord,...=value'"
        )
    address = tuple(part.strip() for part in address_part.split(","))
    value_text = value_part.strip().lower()
    if value_text in ("null", "none", "-"):
        return address, None
    try:
        return address, float(value_part)
    except ValueError:
        raise CatalogError(
            f"bad --cell {spec!r}: value {value_part!r} is not a number "
            "(use 'null' to tombstone)"
        ) from None


def _open_catalog(args: argparse.Namespace, *, sync: bool = True):
    """Open the catalog at ``args.root``, bound to a workload base cube
    unless ``--workload none``."""
    from repro.catalog import ScenarioCatalog

    workload = getattr(args, "workload", "none")
    if workload == "none":
        return ScenarioCatalog(args.root, sync=sync)
    warehouse = _build_warehouse(workload)
    return warehouse.attach_catalog(args.root, sync=sync)


def _cmd_catalog(args: argparse.Namespace) -> int:
    """The ``catalog`` subcommand: durable scenario workspaces.

    Opening the catalog *is* crash recovery: any torn journal tail is
    rolled back and replayable operations are redone before the action
    runs; a non-clean recovery is reported on stderr.  Exit-code
    contract: 0 = done, 2 = any error (typed, one line on stderr).
    """
    import json as json_module

    catalog = _open_catalog(args, sync=not getattr(args, "no_sync", False))
    recovery = catalog.recovery
    if recovery.outcome != "clean":
        print(
            f"repro: catalog recovered ({recovery.outcome}): "
            f"{recovery.replayed} replayed, "
            f"{len(recovery.quarantined)} quarantined",
            file=sys.stderr,
        )
    action = args.catalog_command
    if action == "list":
        infos = catalog.list_scenarios(tenant=args.tenant)
        if args.json:
            print(json_module.dumps([info.__dict__ for info in infos], indent=2))
        else:
            stats = catalog.stats()
            for info in infos:
                print(
                    f"{info.name}\ttenant={info.tenant}\t"
                    f"cells={info.changed_cells}\tbytes={info.delta_bytes}"
                    + (f"\tparent={info.parent}" if info.parent else "")
                )
            print(
                f"# {stats['scenarios']} scenario(s), "
                f"{stats['delta_bytes']} delta bytes, "
                f"generation {stats['generation']}",
                file=sys.stderr,
            )
    elif action == "create":
        cells = dict(_parse_cell_spec(spec) for spec in args.cell or [])
        info = catalog.create(args.name, tenant=args.tenant, cells=cells)
        print(f"created {info.name} ({info.changed_cells} cells, "
              f"{info.delta_bytes} bytes)")
    elif action == "drop":
        catalog.drop(args.name)
        print(f"dropped {args.name}")
    elif action == "diff":
        report = catalog.diff(args.a, args.b)
        if args.json:
            print(json_module.dumps(report.to_dict(), indent=2))
        else:
            print(
                f"{report.a} vs {report.b}: "
                f"{report.changed_cells} differing cell(s), "
                f"overlap {report.overlap:.3f}"
            )
            if report.identical:
                print("scenarios are identical")
            elif report.a_contained_in_b:
                print(f"{report.a} is contained in {report.b}")
            elif report.b_contained_in_a:
                print(f"{report.b} is contained in {report.a}")
            if report.conflicting_chunks:
                print(
                    "merge would conflict on: "
                    + ", ".join(report.conflicting_chunks)
                )
    elif action == "gc":
        report = catalog.gc()
        for key in sorted(report):
            print(f"{key}={report[key]}")
    else:  # smoke
        return _catalog_smoke(catalog, args)
    catalog.close()
    return 0


def _catalog_smoke(catalog, args: argparse.Namespace) -> int:
    """The CI ``catalog-smoke`` gate: create N scenarios, tear the
    journal mid-record (the kill), reopen, recover, diff — asserting the
    crash contract end to end."""
    from repro.catalog import ScenarioCatalog

    count = args.scenarios
    base = catalog.base
    address = next(iter(base.leaf_cells()))[0] if base is not None else ("a",)
    for index in range(count):
        catalog.create(
            f"smoke-{index:05d}",
            tenant=f"tenant-{index % 7}",
            cells={address: float(index)},
        )
    catalog.flush()
    stats = catalog.stats()
    catalog.close()
    # the kill: a torn half-record at the journal tail
    journal = catalog._journal.path
    with open(journal, "ab") as handle:
        handle.write(b"deadbeef torn-record-no-newline")
    reopened = ScenarioCatalog(args.root, base=base)
    recovery = reopened.recovery
    survivors = len(reopened)
    report = reopened.diff("smoke-00000", f"smoke-{count - 1:05d}")
    reopened.close()
    print(
        f"catalog-smoke: {count} created, {survivors} after reopen "
        f"({recovery.outcome}; {recovery.replayed} replayed), "
        f"{stats['delta_bytes']} delta bytes, "
        f"diff changed_cells={report.changed_cells}"
    )
    if survivors != count or not recovery.rolled_back:
        print(
            "repro: catalog-smoke FAILED: expected every scenario to "
            "survive a torn-tail kill",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: reprolint over source trees.

    Exit-code contract mirrors ``analyze``: 0 = clean, 1 = warnings
    under ``--strict``, 2 = any error-severity finding (or a bad
    baseline/missing path).
    """
    from repro.lint.cli import lint_main

    return lint_main(
        args.paths,
        baseline_path=args.baseline,
        json_output=args.json,
        strict=args.strict,
    )


def _demo(budget: "QueryBudget | None" = None) -> int:
    print(f"repro {repro.__version__} — What-if OLAP queries "
          "with changing dimensions (ICDE 2008 reproduction)\n")
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube)
    print("Joe's instances:", ", ".join(
        f"{i.qualified_name} {i.validity.sorted_moments()}"
        for i in example.org.instances_of("Joe")
    ))
    print("\nWITH PERSPECTIVE {(Feb), (Apr)} FOR Organization "
          "DYNAMIC FORWARD VISUAL ...\n")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
        """,
        budget=budget,
    )
    print(result.to_text())
    print("\nNext steps: python -m repro analyze <query-file> | "
          "python -m repro query <query-file> | python -m repro.bench all")
    return 1 if result.is_partial else 0


def _arm_faults(args: argparse.Namespace) -> "int | None":
    """Arm failpoints from --faults and REPRO_FAULTS; 2 on a bad spec."""
    try:
        FAULTS.arm_from_env()
        if getattr(args, "faults", None):
            FAULTS.arm_from_spec(args.faults)
    except ValueError as exc:
        print(f"repro: bad --faults spec: {exc}", file=sys.stderr)
        return 2
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm fault-injection failpoints, e.g. "
        "'io.save.cells:after=2;chunk.read:prob=0.1@seed=7' "
        "(also honours the REPRO_FAULTS environment variable)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="wall-clock query budget in milliseconds; on breach the query "
        "returns a partial (⊥-padded) result and the process exits 1",
    )
    subparsers = parser.add_subparsers(dest="command")
    analyze = subparsers.add_parser(
        "analyze",
        help="statically analyze an extended-MDX query without executing it",
        description=(
            "Run the static analyzer over a query file (or stdin with '-') "
            "and print its diagnostics.  Exit codes: 0 = clean, 1 = "
            "warnings under --strict, 2 = errors."
        ),
    )
    analyze.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    analyze.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to analyze against (default: the paper's running "
        "example)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the report contains warnings",
    )
    query = subparsers.add_parser(
        "query",
        help="execute an extended-MDX query (optionally under a budget)",
        description=(
            "Execute a query file (or stdin with '-') and print the result "
            "grid.  Exit codes: 0 = complete result, 1 = partial result "
            "(query budget breached; unevaluated cells print as ⊥/-), "
            "2 = errors."
        ),
    )
    query.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    query.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to query (default: the paper's running example)",
    )
    query.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        default=argparse.SUPPRESS,
        help="wall-clock query budget in milliseconds",
    )
    query.add_argument(
        "--max-cells",
        type=int,
        metavar="N",
        help="cell-evaluation budget; on breach the result is partial",
    )
    query.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a text grid"
    )
    query.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the static analyzer before execution",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print per-query engine counters to stderr as '# key,value' lines",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="trace the query and print a phase-timing profile to stderr",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="with --profile, emit the profile as a JSON document on stdout "
        "instead of the result grid",
    )
    query.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="set the slow-query log threshold and dump the log to stderr "
        "after the query (0 records everything)",
    )
    explain = subparsers.add_parser(
        "explain",
        help="print a query's analyzed plan and scope estimates without "
        "executing it",
        description=(
            "EXPLAIN a query file (or stdin with '-'): the scenario "
            "pipeline (algebra operators), analyzer diagnostics, axis "
            "shapes, and rollup-index scope-size estimates — the grid is "
            "never filled.  Exit codes: 0 = explained, 2 = errors."
        ),
    )
    explain.add_argument(
        "query_file", help="path to an extended-MDX query file, or - for stdin"
    )
    explain.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to explain against (default: the paper's running "
        "example)",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the structured EXPLAIN report as JSON",
    )
    serve = subparsers.add_parser(
        "serve",
        help="run ;-separated queries concurrently through the query service",
        description=(
            "Read ;-separated extended-MDX statements from a file (or "
            "stdin with '-'), submit them all through a bounded worker "
            "pool — each pinned to a snapshot at submission — and print "
            "the grids in submission order.  Exit codes: 0 = all "
            "complete, 1 = any partial or shed, 2 = any error."
        ),
    )
    serve.add_argument(
        "query_file",
        nargs="?",
        default="-",
        help="path to a file of ;-separated queries, or - for stdin "
        "(default)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker threads (default: 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="admission-queue bound; beyond it submissions are shed "
        "(default: 16)",
    )
    serve.add_argument(
        "--workload",
        choices=("running", "workforce"),
        default="running",
        help="warehouse to serve (default: the paper's running example)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        default=argparse.SUPPRESS,
        help="per-query deadline; queue wait counts against it",
    )
    serve.add_argument(
        "--max-cells",
        type=int,
        metavar="N",
        help="per-query cell-evaluation budget",
    )
    serve.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text grids"
    )
    serve.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the static analyzer before execution",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run through the multi-process sharded coordinator with N "
        "shard processes (each owning a disjoint chunk of the varying "
        "dimension) instead of the in-process worker pool",
    )
    serve.add_argument(
        "--chunk",
        type=int,
        default=8,
        metavar="N",
        help="shard-planner chunk size over the varying dimension's slots "
        "(default: 8; smaller spreads members across more shards)",
    )
    serve.add_argument(
        "--degrade",
        choices=("fail", "fallback", "partial"),
        default="fallback",
        help="shard-failure policy for the sharded coordinator: 'fallback' "
        "recomputes a dead shard's cells locally (bit-identical, default), "
        "'partial' returns them as ⊥ with degradation records, 'fail' "
        "raises a typed error",
    )
    serve.add_argument(
        "--http",
        action="store_true",
        help="serve the REST API (POST /v1/query, POST /v1/explain, "
        "GET /metrics, GET /healthz, GET /readyz) over the sharded "
        "coordinator instead of executing a query batch",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --http (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        metavar="N",
        help="port for --http (default: 8080)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="per-tenant concurrent in-flight quota for --http; beyond it "
        "requests are shed with HTTP 429 (default: 8)",
    )
    stress = subparsers.add_parser(
        "stress",
        help="chaos-test the query service: concurrent queries vs "
        "mutations vs faults",
        description=(
            "Race client threads, cube mutators, and (by default) armed "
            "failpoints against one warehouse, then verify snapshot "
            "isolation by replaying every completed query serially "
            "against its pinned snapshot — grids must match "
            "bit-for-bit and every observed error must be typed.  "
            "Exit codes: 0 = all invariants held, 2 = any violation."
        ),
    )
    stress.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 4 workers, ~1s (same invariants)",
    )
    stress.add_argument(
        "--sharded",
        action="store_true",
        help="run the shard-kill storm against the multi-process "
        "coordinator instead: clients rotate degrade policies while "
        "random shard processes are SIGKILLed; the pool must stay "
        "bit-identical-or-partial and recover after the storm",
    )
    stress.add_argument(
        "--workers",
        type=int,
        default=8,
        metavar="N",
        help="client threads (default: 8; ignored with --smoke)",
    )
    stress.add_argument(
        "--duration",
        type=float,
        default=3.0,
        metavar="S",
        help="storm duration in seconds (default: 3; ignored with --smoke)",
    )
    stress.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for workload/mutation choices (default: 0)",
    )
    stress.add_argument(
        "--no-faults",
        action="store_true",
        help="run without arming failpoints during the storm",
    )
    stress.add_argument(
        "--json",
        action="store_true",
        help="emit the stress report as JSON",
    )
    lint = subparsers.add_parser(
        "lint",
        help="run reprolint: concurrency + hygiene checks over source trees",
        description=(
            "Run the self-hosted static analyzer (lock-order, shared-state "
            "guards, failpoint hygiene, metrics/span hygiene, error "
            "taxonomy) over one or more files/directories.  Exit codes: "
            "0 = clean, 1 = warnings with --strict, 2 = errors."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings (each entry needs a "
        "justification); stale entries are reported as RPL002",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings (errors always exit 2)",
    )
    catalog = subparsers.add_parser(
        "catalog",
        help="manage durable what-if scenario workspaces",
        description=(
            "Operate on a crash-safe, delta-encoded scenario catalog "
            "(see docs/scenarios.md).  Opening the catalog replays its "
            "write-ahead journal, so every action below is also a "
            "recovery.  Exit codes: 0 = ok, 2 = error."
        ),
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)

    def _catalog_common(sub: argparse.ArgumentParser, workload: str) -> None:
        sub.add_argument("root", help="catalog directory")
        sub.add_argument(
            "--workload",
            choices=["running", "workforce", "none"],
            default=workload,
            help="base cube to bind scenarios to "
            f"(default: {workload})",
        )

    cat_list = catalog_sub.add_parser(
        "list", help="list scenarios (optionally one tenant's)"
    )
    _catalog_common(cat_list, "none")
    cat_list.add_argument("--tenant", default=None, help="filter by tenant")
    cat_list.add_argument("--json", action="store_true", help="emit JSON")
    cat_create = catalog_sub.add_parser(
        "create", help="create a scenario with optional cell overrides"
    )
    _catalog_common(cat_create, "running")
    cat_create.add_argument("name", help="scenario name")
    cat_create.add_argument("--tenant", default="default", help="owning tenant")
    cat_create.add_argument(
        "--cell",
        action="append",
        metavar="COORD,COORD,...=VALUE",
        help="cell override (repeatable); VALUE 'null' tombstones the cell",
    )
    cat_drop = catalog_sub.add_parser("drop", help="drop a scenario")
    _catalog_common(cat_drop, "none")
    cat_drop.add_argument("name", help="scenario name")
    cat_diff = catalog_sub.add_parser(
        "diff", help="diff two scenarios (containment/overlap/conflicts)"
    )
    _catalog_common(cat_diff, "none")
    cat_diff.add_argument("a", help="first scenario")
    cat_diff.add_argument("b", help="second scenario")
    cat_diff.add_argument("--json", action="store_true", help="emit JSON")
    cat_gc = catalog_sub.add_parser(
        "gc", help="checkpoint the journal and sweep orphaned delta files"
    )
    _catalog_common(cat_gc, "none")
    cat_smoke = catalog_sub.add_parser(
        "smoke",
        help="CI gate: create N scenarios, kill mid-write, reopen, diff",
    )
    _catalog_common(cat_smoke, "running")
    cat_smoke.add_argument(
        "--scenarios",
        type=int,
        default=1000,
        metavar="N",
        help="number of scenarios to create (default: 1000)",
    )
    cat_smoke.add_argument(
        "--no-sync",
        action="store_true",
        help="skip per-commit fsync (bulk-load speed)",
    )
    args = parser.parse_args(argv)
    if args.version:
        print(repro.__version__)
        return 0
    failed = _arm_faults(args)
    if failed is not None:
        return failed
    try:
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "stress":
            return _cmd_stress(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "catalog":
            return _cmd_catalog(args)
        return _demo(budget=_budget_from_args(args))
    except (ReproError, OSError) as exc:
        # IO, corruption, format, and query errors share one contract:
        # a single-line message on stderr and exit code 2 — never a
        # traceback for a failure mode the tool itself defines.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
