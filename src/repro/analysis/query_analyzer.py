"""Static semantic analysis of parsed extended-MDX queries.

The analyzer runs on the output of :func:`repro.mdx.parser.parse_query`
*before any cube data is read*: every check below consults only schema
metadata — dimension hierarchies, varying-dimension instance tables,
named-set definitions, and the validity-set transform Φ (a pure metadata
operator).  It mirrors the evaluator's acceptance logic exactly, so an
error-level diagnostic means the query is guaranteed to fail (or to
produce only ⊥) at execution time.

The paper's precondition surface (Sec. 3–4) maps onto the checks as:

* perspectives P must be leaves ("moments") of the parameter dimension
  (``WIF102``), with semantics compatible with its ordering (``WIF103``);
* relocate ρ only moves values between *related* member instances —
  a change tuple (m, o, n, t) must name m's actual parent o at t
  (``WIF202``), a non-leaf target n (``WIF203``), and the change relation
  R must be consistent (``WIF204``) and acyclic (``WIF205``);
* visual and non-visual modes cannot be mixed within one scenario
  (``WIF105``);
* a member-instance reference whose output validity set is empty under
  the chosen perspective addresses only ⊥ cells (``WIF301``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.core.perspective import PerspectiveSet, Semantics, phi_member
from repro.errors import (
    AmbiguousMemberError,
    MdxEvaluationError,
    MdxSyntaxError,
    SchemaError,
)
from repro.mdx.ast_nodes import (
    ChangesClause,
    ChildrenExpr,
    CrossJoinExpr,
    DescendantsExpr,
    FilterExpr,
    HeadExpr,
    LevelsMembersExpr,
    MdxQuery,
    MemberPath,
    MembersExpr,
    OrderExpr,
    PerspectiveClause,
    SetExpr,
    SetLiteral,
    TailExpr,
    TupleExpr,
    UnionExpr,
)
from repro.mdx.parser import parse_query
from repro.olap.dimension import Dimension, Member
from repro.olap.instances import VaryingDimension

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.warehouse import Warehouse

__all__ = ["analyze_query", "QueryAnalyzer"]

_DESCENDANTS_FLAGS = frozenset(
    ("self", "self_and_after", "after", "self_and_before", "before")
)


def analyze_query(warehouse: "Warehouse", query: "MdxQuery | str") -> DiagnosticReport:
    """Analyze a query (text or parsed) against a warehouse's metadata.

    Never raises on malformed input: syntax errors come back as a
    ``WIF000`` diagnostic, everything else as the codes documented in
    ``docs/static_analysis.md``.
    """
    if isinstance(query, str):
        try:
            query = parse_query(query)
        except MdxSyntaxError as exc:
            report = DiagnosticReport()
            report.add("WIF000", exc.raw_message, exc.span)
            return report
    return QueryAnalyzer(warehouse, query).run()


class QueryAnalyzer:
    """One analysis run over one parsed query."""

    def __init__(self, warehouse: "Warehouse", query: MdxQuery) -> None:
        self.warehouse = warehouse
        self.schema = warehouse.schema
        self.query = query
        self.report = DiagnosticReport()
        self.query_sets: dict[str, SetExpr] = dict(query.named_sets)
        #: per-dimension view of the varying structure (hypothetical after
        #: a valid changes clause)
        self.varying_view: dict[str, VaryingDimension] = dict(self.schema.varying)
        #: full paths surviving the perspective, per member (lazy); None =
        #: no (valid) perspective clause
        self._pset: PerspectiveSet | None = None
        self._semantics: Semantics | None = None
        self._scenario_dim: str | None = None
        self._has_scenario = False

    # -- entry point --------------------------------------------------------

    def run(self) -> DiagnosticReport:
        self._check_cube_name()
        self._check_axes_shape()
        self._check_named_set_recursion()
        if self.query.changes is not None:
            self._check_changes(self.query.changes)
        if self.query.perspective is not None:
            self._check_perspective(self.query.perspective)
        self._check_mode_conflict()
        self._check_slicer_shadowing()
        # Expression walks come last so they see the scenario context.
        for _name, body in self.query.named_sets:
            self._walk(body, in_tuple=False)
        for axis in self.query.axes:
            self._walk(axis.expr, in_tuple=False)
            for prop in axis.properties:
                # The evaluator matches properties by name and silently
                # ignores unknown ones, so this is a warning, not an error.
                if self._resolve_quiet(prop) is None:
                    self.report.add(
                        "WIF002",
                        f"DIMENSION PROPERTIES reference {prop.display()} "
                        "does not resolve and will be ignored",
                        prop.span,
                        severity=Severity.WARNING,
                    )
        if self.query.slicer is not None:
            self._walk_tuple(self.query.slicer)
        return self.report.sorted()

    # -- query shape --------------------------------------------------------

    def _check_cube_name(self) -> None:
        ref = self.query.cube
        acceptable = {self.warehouse.name} | self.warehouse.aliases
        if not ref or not any(part in acceptable for part in ref):
            self.report.add(
                "WIF001",
                f"query addresses cube {'.'.join(ref)!r}; this warehouse is "
                f"{self.warehouse.name!r}",
                self.query.cube_span,
            )

    def _check_axes_shape(self) -> None:
        seen: dict[str, int] = {}
        for axis in self.query.axes:
            seen[axis.axis] = seen.get(axis.axis, 0) + 1
            if seen[axis.axis] == 2:
                self.report.add(
                    "WIF004",
                    f"axis {axis.axis!r} is bound more than once; the later "
                    "binding would silently win",
                    axis.span,
                )
        if "columns" not in seen:
            self.report.add(
                "WIF005", "a query must place a set ON COLUMNS",
                self.query.axes[0].span if self.query.axes else None,
            )
        if len(self.query.axes) > 2:
            self.report.add(
                "WIF005",
                "only COLUMNS and ROWS axes are supported in this "
                "implementation",
                self.query.axes[2].span,
            )

    def _check_named_set_recursion(self) -> None:
        def references(expr: SetExpr) -> set[str]:
            refs: set[str] = set()
            if isinstance(expr, MemberPath):
                if len(expr.parts) == 1 and expr.parts[0] in self.query_sets:
                    refs.add(expr.parts[0])
            elif isinstance(expr, SetLiteral):
                for element in expr.elements:
                    refs |= references(element)
            elif isinstance(expr, (CrossJoinExpr, UnionExpr)):
                refs |= references(expr.left) | references(expr.right)
            elif isinstance(expr, (HeadExpr, TailExpr, FilterExpr, OrderExpr)):
                refs |= references(expr.base)
            return refs

        flagged: set[str] = set()
        for name in self.query_sets:
            stack = [name]
            seen: set[str] = set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                for ref in references(self.query_sets[current]):
                    if ref == name and name not in flagged:
                        flagged.add(name)
                        self.report.add(
                            "WIF006",
                            f"named set {name!r} is defined in terms of itself",
                        )
                    stack.append(ref)

    # -- scenario clauses ---------------------------------------------------

    def _check_perspective(self, clause: PerspectiveClause) -> None:
        if clause.dimension not in self.schema.dim_names():
            self.report.add(
                "WIF101",
                f"perspective dimension {clause.dimension!r} is not a "
                "dimension of this cube",
                clause.span,
            )
            return
        if not self.schema.is_varying(clause.dimension):
            self.report.add(
                "WIF101",
                f"perspective dimension {clause.dimension!r} is not varying",
                clause.span,
            )
            return
        varying = self.varying_view[clause.dimension]
        parameter = varying.parameter
        bad_points = False
        for point in clause.perspectives:
            try:
                varying.moment_index(point)
            except (SchemaError, MdxEvaluationError):
                bad_points = True
                self.report.add(
                    "WIF102",
                    f"perspective point {point!r} is not a leaf (moment) of "
                    f"the parameter dimension {parameter.name!r}",
                    clause.span,
                )
        duplicates = {
            p for p in clause.perspectives if clause.perspectives.count(p) > 1
        }
        if duplicates:
            self.report.add(
                "WIF104",
                "duplicate perspective points "
                f"{sorted(duplicates)} have no effect",
                clause.span,
            )
        semantics = Semantics(clause.semantics)
        if semantics.is_dynamic and not parameter.ordered:
            self.report.add(
                "WIF103",
                f"{semantics.value} semantics requires an ordered parameter "
                f"dimension; {parameter.name!r} is unordered",
                clause.span,
            )
            return
        if bad_points:
            return
        self._pset = PerspectiveSet.from_names(
            dict.fromkeys(clause.perspectives), varying
        )
        self._semantics = semantics
        self._scenario_dim = clause.dimension
        self._has_scenario = True

    def _check_changes(self, clause: ChangesClause) -> None:
        dimension: str | None = clause.dimension
        if dimension is not None and dimension not in self.schema.dim_names():
            self.report.add(
                "WIF206",
                f"changes clause names unknown dimension {dimension!r}",
                clause.span,
            )
            return
        if dimension is not None and not self.schema.is_varying(dimension):
            self.report.add(
                "WIF101",
                f"changes dimension {dimension!r} is not varying",
                clause.span,
            )
            return

        # Resolve each change tuple to concrete (member, old, new, moment)
        # rows, mirroring the evaluator's expansion of member.Children.
        rows: list[tuple[str, str, str, str, object]] = []
        failed = False
        for spec in clause.changes:
            try:
                dim, member = self.warehouse.resolve_member(spec.member.parts)
            except AmbiguousMemberError as exc:
                self.report.add("WIF003", str(exc), spec.member.span or spec.span)
                failed = True
                continue
            except MdxEvaluationError as exc:
                self.report.add("WIF201", str(exc), spec.member.span or spec.span)
                failed = True
                continue
            if dimension is None:
                dimension = dim.name
                if not self.schema.is_varying(dimension):
                    self.report.add(
                        "WIF101",
                        f"changes dimension {dimension!r} is not varying",
                        clause.span,
                    )
                    return
            elif dim.name != dimension:
                self.report.add(
                    "WIF206",
                    f"change tuple member {spec.member.display()} belongs to "
                    f"{dim.name!r}, clause names {dimension!r}",
                    spec.span,
                )
                failed = True
                continue
            members = (
                [child.name for child in member.children]
                if spec.expand
                else [member.name]
            )
            varying = self.varying_view[dimension]
            for name in members:
                row_ok = True
                for parent_role, parent_name in (
                    ("old", spec.old_parent), ("new", spec.new_parent)
                ):
                    if parent_name not in varying.dimension:
                        self.report.add(
                            "WIF201",
                            f"change tuple {parent_role} parent "
                            f"{parent_name!r} does not exist in dimension "
                            f"{dimension!r}",
                            spec.span,
                        )
                        row_ok = False
                try:
                    varying.moment_index(spec.moment)
                except SchemaError:
                    self.report.add(
                        "WIF201",
                        f"change moment {spec.moment!r} is not a leaf of the "
                        f"parameter dimension "
                        f"{varying.parameter.name!r}",
                        spec.span,
                    )
                    row_ok = False
                if row_ok:
                    rows.append(
                        (name, spec.old_parent, spec.new_parent, spec.moment,
                         spec.span)
                    )
                else:
                    failed = True
        if dimension is None:
            self.report.add(
                "WIF206", "cannot infer the changes dimension", clause.span
            )
            return
        if failed:
            return
        self._apply_changes(dimension, rows)

    def _apply_changes(
        self,
        dimension: str,
        rows: Sequence[tuple[str, str, str, str, object]],
    ) -> None:
        """Mirror of ``operators._hypothetical_structure`` that classifies
        each failure instead of raising on the first."""
        varying = self.varying_view[dimension]
        if not varying.parameter.ordered:
            self.report.add(
                "WIF103",
                "positive changes require an ordered parameter dimension; "
                f"{varying.parameter.name!r} is unordered",
            )
            return
        hypo = varying.copy()
        # Stable sort: same-moment tuples keep their clause order, exactly
        # as the runtime applies them.
        ordered = sorted(rows, key=lambda row: hypo.moment_index(row[3]))
        applied: set[tuple[str, str]] = set()
        affected: list[str] = []
        ok = True
        for member, old_parent, new_parent, moment, span in ordered:
            t = hypo.moment_index(moment)
            current = hypo.parent_at(member, t)
            if current is None:
                self.report.add(
                    "WIF202",
                    f"member {member!r} has no instance at {moment!r}; "
                    "relocate ρ only moves values between related instances",
                    span,  # type: ignore[arg-type]
                )
                ok = False
                continue
            if current != old_parent:
                if (member, moment) in applied:
                    # A second tuple for the same (member, moment) whose old
                    # parent does not chain onto the first one's new parent:
                    # the relation R is inconsistent, not merely stale.
                    self.report.add(
                        "WIF204",
                        f"conflicting change tuples for member {member!r} at "
                        f"moment {moment!r}: an earlier tuple already moved "
                        f"it under {current!r}, this one claims old parent "
                        f"{old_parent!r}",
                        span,  # type: ignore[arg-type]
                    )
                else:
                    self.report.add(
                        "WIF202",
                        f"change for {member!r} at {moment!r} names old "
                        f"parent {old_parent!r} but the instance valid there "
                        f"is under {current!r}",
                        span,  # type: ignore[arg-type]
                    )
                ok = False
                continue
            parent_obj = hypo.dimension.member(new_parent)
            if parent_obj.is_leaf and hypo.is_managed(new_parent):
                self.report.add(
                    "WIF203",
                    f"cannot reparent {member!r} under {new_parent!r}: it is "
                    "a leaf member (split S requires a non-leaf target)",
                    span,  # type: ignore[arg-type]
                )
                ok = False
                continue
            try:
                hypo.reparent(member, new_parent, t)
            except Exception as exc:  # noqa: BLE001 - classified below
                self.report.add("WIF203", str(exc), span)  # type: ignore[arg-type]
                ok = False
                continue
            applied.add((member, moment))
            affected.append(member)
        # Cycle scan: computing every affected path is exactly the runtime
        # check, done eagerly on metadata only.
        for member in affected:
            for t in range(hypo.universe):
                try:
                    hypo.path_at(member, t)
                except SchemaError as exc:
                    self.report.add("WIF205", str(exc))
                    ok = False
                    break
            else:
                continue
            break
        if ok:
            self.varying_view[dimension] = hypo
            self._scenario_dim = self._scenario_dim or dimension
            self._has_scenario = True

    def _check_mode_conflict(self) -> None:
        perspective = self.query.perspective
        changes = self.query.changes
        if perspective is None or changes is None:
            return
        if perspective.mode != changes.mode:
            self.report.add(
                "WIF105",
                f"PERSPECTIVE is {perspective.mode} but CHANGES is "
                f"{changes.mode}; visual and non-visual modes cannot be "
                "mixed within one scenario",
                perspective.span or changes.span,
            )

    def _check_slicer_shadowing(self) -> None:
        if self.query.slicer is None:
            return
        axis_dims: dict[str, str] = {}
        for axis in self.query.axes:
            for dim_name in self._dimensions_of(axis.expr):
                axis_dims.setdefault(dim_name, axis.axis)
        for path in self.query.slicer.members:
            dim = self._resolve_quiet(path)
            if dim is not None and dim.name in axis_dims:
                self.report.add(
                    "WIF302",
                    f"slicer coordinate {path.display()} on dimension "
                    f"{dim.name!r} is shadowed by the {axis_dims[dim.name]} "
                    "axis; axis coordinates override the slicer",
                    path.span,
                )

    def _dimensions_of(self, expr: SetExpr) -> set[str]:
        dims: set[str] = set()
        if isinstance(expr, MemberPath):
            if len(expr.parts) == 1 and expr.parts[0] in self.query_sets:
                return self._dimensions_of(self.query_sets[expr.parts[0]])
            dim = self._resolve_quiet(expr)
            if dim is not None:
                dims.add(dim.name)
        elif isinstance(expr, TupleExpr):
            for path in expr.members:
                dims |= self._dimensions_of(path)
        elif isinstance(expr, SetLiteral):
            for element in expr.elements:
                dims |= self._dimensions_of(element)
        elif isinstance(expr, (ChildrenExpr, MembersExpr, LevelsMembersExpr,
                               DescendantsExpr)):
            dims |= self._dimensions_of(expr.base)
        elif isinstance(expr, (CrossJoinExpr, UnionExpr)):
            dims |= self._dimensions_of(expr.left)
            dims |= self._dimensions_of(expr.right)
        elif isinstance(expr, (HeadExpr, TailExpr, FilterExpr, OrderExpr)):
            dims |= self._dimensions_of(expr.base)
        return dims

    # -- member resolution ---------------------------------------------------

    def _resolve_quiet(self, path: MemberPath) -> Dimension | None:
        try:
            dim, _member = self.warehouse.resolve_member(path.parts)
            return dim
        except MdxEvaluationError:
            return None

    def _resolve(self, path: MemberPath) -> tuple[Dimension, Member] | None:
        """Resolve a member path, reporting WIF002/WIF003 on failure."""
        try:
            return self.warehouse.resolve_member(path.parts)
        except AmbiguousMemberError as exc:
            self.report.add("WIF003", str(exc), path.span)
        except MdxEvaluationError as exc:
            self.report.add("WIF002", str(exc), path.span)
        return None

    def _surviving_instances(
        self, dim: Dimension, member: Member, ancestors: Sequence[str]
    ) -> "list[str] | None":
        """Mirror of ``_Context.expand_member`` on metadata only: the
        instance paths a varying leaf member expands to, or ``None`` when
        the reference binds as a plain member (non-varying, or non-leaf)."""
        name = dim.name
        if name not in self.varying_view or not member.is_leaf:
            return None
        varying = self.varying_view[name]
        allowed: set[str] | None = None
        if self._pset is not None and name == self._scenario_dim:
            transformed = phi_member(
                varying.instances_of(member.name), self._pset,
                self._semantics or Semantics.STATIC,
            )
            allowed = {inst.full_path for inst in transformed}
        paths: list[str] = []
        for instance in varying.instances_of(member.name):
            if ancestors and not set(ancestors) <= set(instance.path[:-1]):
                continue
            if allowed is not None and instance.full_path not in allowed:
                continue
            paths.append(instance.full_path)
        return paths

    def _check_member_reference(self, path: MemberPath, in_tuple: bool) -> None:
        if len(path.parts) == 1:
            name = path.parts[0]
            if name in self.query_sets:
                return  # body analyzed once in run()
            named = self.warehouse.named_set(name)
            if named is not None:
                if in_tuple:
                    self._check_named_set_in_tuple(path, named.members)
                return
        resolved = self._resolve(path)
        if resolved is None:
            return
        dim, member = resolved
        ancestors = tuple(a for a in path.parts[:-1] if a != dim.name)
        paths = self._surviving_instances(dim, member, ancestors)
        if paths is None:
            return
        if not paths:
            if in_tuple and not self._has_scenario:
                # The evaluator requires exactly one binding per tuple
                # component, so zero instances is a hard failure there.
                self.report.add(
                    "WIF303",
                    f"tuple component {path.display()} matches no member "
                    "instance (0 instances)",
                    path.span,
                )
                return
            scenario = " under the chosen scenario" if self._has_scenario else ""
            self.report.add(
                "WIF301",
                f"{path.display()} has no valid member instance{scenario}; "
                "every cell it addresses is ⊥",
                path.span,
            )
        elif in_tuple and len(paths) > 1:
            # Without a scenario this is exactly the evaluator's failure;
            # with one, data filtering may still disambiguate at run time.
            severity = None if not self._has_scenario else Severity.WARNING
            self.report.add(
                "WIF303",
                f"tuple component {path.display()} is ambiguous "
                f"({len(paths)} instances); name the instance via its parent",
                path.span,
                severity=severity,
            )

    def _check_named_set_in_tuple(
        self, path: MemberPath, members: Sequence[str]
    ) -> None:
        total = 0
        for name in members:
            try:
                dim, member = self.warehouse.resolve_member((name,))
            except MdxEvaluationError:
                continue
            paths = self._surviving_instances(dim, member, ())
            total += 1 if paths is None else len(paths)
        if total > 1:
            severity = None if not self._has_scenario else Severity.WARNING
            self.report.add(
                "WIF303",
                f"tuple component {path.display()} is ambiguous "
                f"({total} instances); name the instance via its parent",
                path.span,
                severity=severity,
            )

    # -- expression walk ------------------------------------------------------

    def _walk_tuple(self, expr: TupleExpr) -> None:
        for path in expr.members:
            self._check_member_reference(path, in_tuple=True)

    def _walk(self, expr: SetExpr, in_tuple: bool) -> None:
        if isinstance(expr, MemberPath):
            self._check_member_reference(expr, in_tuple)
        elif isinstance(expr, TupleExpr):
            self._walk_tuple(expr)
        elif isinstance(expr, SetLiteral):
            for element in expr.elements:
                self._walk(element, in_tuple)
        elif isinstance(expr, ChildrenExpr):
            base = expr.base
            if len(base.parts) == 1 and (
                base.parts[0] in self.query_sets
                or self.warehouse.named_set(base.parts[0]) is not None
            ):
                return
            self._resolve(base)
        elif isinstance(expr, (MembersExpr, LevelsMembersExpr)):
            self._resolve(expr.base)
        elif isinstance(expr, DescendantsExpr):
            self._resolve(expr.base)
            if expr.flag not in _DESCENDANTS_FLAGS:
                self.report.add(
                    "WIF007",
                    f"unknown Descendants flag {expr.flag!r}; expected one "
                    f"of {sorted(_DESCENDANTS_FLAGS)}",
                    expr.base.span,
                )
        elif isinstance(expr, (CrossJoinExpr, UnionExpr)):
            self._walk(expr.left, in_tuple)
            self._walk(expr.right, in_tuple)
        elif isinstance(expr, (HeadExpr, TailExpr)):
            self._walk(expr.base, in_tuple)
        elif isinstance(expr, (FilterExpr, OrderExpr)):
            self._walk(expr.base, in_tuple)
            self._walk_tuple(expr.condition)
