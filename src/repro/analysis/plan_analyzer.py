"""Static analysis of algebra plans (:mod:`repro.core.plans`).

Runs over a plan tree plus schema metadata before :func:`execute_plan`
touches any cube data.  Error-level findings are guaranteed execution
failures (unknown dimensions, perspectives outside the parameter universe,
split relations violating Def. 3.1); warnings flag plans that run but
cannot do useful work (dead selections); info findings are the optimizer's
own rewrite opportunities (:mod:`repro.core.optimizer`), surfaced as
performance lints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.core.operators import ChangeTuple, _hypothetical_structure
from repro.core.plans import (
    And,
    BaseCube,
    DescendantOf,
    EvaluateNode,
    MemberEquals,
    MemberIn,
    Not,
    Or,
    PerspectiveNode,
    PlanNode,
    Pred,
    SelectNode,
    SplitNode,
    ValidityIntersects,
)
from repro.errors import InvalidChangeError, SchemaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.olap.dimension import Dimension
    from repro.olap.instances import VaryingDimension
    from repro.olap.schema import CubeSchema

__all__ = ["analyze_plan", "PlanAnalyzer"]


def analyze_plan(
    plan: PlanNode,
    schema: "CubeSchema",
    varying: "Mapping[str, VaryingDimension] | None" = None,
) -> DiagnosticReport:
    """Analyze a plan against a schema (and optional varying overrides,
    matching the ``varying`` argument of :func:`execute_plan`)."""
    return PlanAnalyzer(schema, varying).run(plan)


class PlanAnalyzer:
    """One analysis run over one plan tree."""

    def __init__(
        self,
        schema: "CubeSchema",
        varying: "Mapping[str, VaryingDimension] | None" = None,
    ) -> None:
        self.schema = schema
        self.overrides = dict(varying or {})
        self.report = DiagnosticReport()

    def _varying_for(self, dimension: str) -> "VaryingDimension | None":
        """The varying structure a node would execute against, mirroring
        ``_execute``'s override-then-schema lookup."""
        override = self.overrides.get(dimension)
        if override is not None:
            return override
        if self.schema.is_varying(dimension):
            return self.schema.varying_dimension(dimension)
        return None

    def run(self, plan: PlanNode) -> DiagnosticReport:
        node: PlanNode | None = plan
        chain: list[PlanNode] = []
        while node is not None and not isinstance(node, BaseCube):
            chain.append(node)
            if isinstance(node, SelectNode):
                self._check_select(node)
            elif isinstance(node, PerspectiveNode):
                self._check_perspective(node)
            elif isinstance(node, SplitNode):
                self._check_split(node)
            elif isinstance(node, EvaluateNode):
                self._check_evaluate(node)
            else:
                self.report.add(
                    "WIF401",
                    f"unknown plan node {node.label()}",
                    subject=node.label(),
                )
            node = node.child
        self._check_chain(chain)
        return self.report.sorted()

    # -- per-node checks ----------------------------------------------------

    def _check_select(self, node: SelectNode) -> None:
        label = node.label()
        if node.dimension not in self.schema.dim_names():
            self.report.add(
                "WIF401",
                f"selection over unknown dimension {node.dimension!r}",
                subject=label,
            )
            return
        dimension = self.schema.dimension(node.dimension)
        varying = self._varying_for(node.dimension)
        if self._predicate_dead(node.predicate, dimension, varying):
            self.report.add(
                "WIF403",
                f"dead selection: {node.predicate!r} can never match a "
                f"member of {node.dimension!r}; σ drops every sub-cube",
                subject=label,
            )
        inner = node.input_plan
        if isinstance(inner, (PerspectiveNode, SplitNode)):
            pushable = (
                node.dimension != inner.dimension
                or node.predicate.is_member_level
            )
            if pushable:
                op = (
                    "Perspective"
                    if isinstance(inner, PerspectiveNode)
                    else "Split"
                )
                self.report.add(
                    "WIF405",
                    f"selection above {op} commutes downward; pushing σ "
                    "below shrinks the cube the relocation processes "
                    "(optimizer rule push-select-through-"
                    f"{op.lower()})",
                    subject=label,
                )

    def _check_perspective(self, node: PerspectiveNode) -> None:
        label = node.label()
        varying = self._varying_for(node.dimension)
        if varying is None:
            self.report.add(
                "WIF401",
                f"perspective over {node.dimension!r}, which is not a "
                "varying dimension of this schema",
                subject=label,
            )
            return
        if not node.perspectives:
            self.report.add(
                "WIF402",
                "a perspective set must contain at least one moment",
                subject=label,
            )
        universe = varying.universe
        bad = [p for p in node.perspectives if not 0 <= p < universe]
        if bad:
            self.report.add(
                "WIF402",
                f"perspective moments {bad} outside the parameter range "
                f"[0, {universe})",
                subject=label,
            )
        if node.semantics.is_dynamic and not varying.parameter.ordered:
            # The plan executor tolerates this (unlike NegativeScenario),
            # but the paper's Sec. 3.3 precondition makes it suspect.
            self.report.add(
                "WIF402",
                f"{node.semantics.value} semantics over the unordered "
                f"parameter dimension {varying.parameter.name!r} treats its "
                "leaf order as a timeline",
                subject=label,
                severity=Severity.WARNING,
            )
        inner = node.input_plan
        if (
            node.semantics.value == "static"
            and isinstance(inner, PerspectiveNode)
            and inner.semantics.value == "static"
            and inner.dimension == node.dimension
            and set(inner.perspectives) <= set(node.perspectives)
        ):
            self.report.add(
                "WIF404",
                "redundant Φ composition: survivors of the inner static "
                f"perspective P={sorted(set(inner.perspectives))} already "
                "survive the outer one (optimizer rule "
                "drop-redundant-static-perspective)",
                subject=label,
            )

    def _check_split(self, node: SplitNode) -> None:
        label = node.label()
        varying = self._varying_for(node.dimension)
        if varying is None:
            self.report.add(
                "WIF401",
                f"split over {node.dimension!r}, which is not a varying "
                "dimension of this schema",
                subject=label,
            )
            return
        ok = True
        for member, old_parent, new_parent, moment in node.changes:
            for role, name in (
                ("member", member), ("old parent", old_parent),
                ("new parent", new_parent),
            ):
                if name not in varying.dimension:
                    self.report.add(
                        "WIF407",
                        f"change tuple {role} {name!r} does not exist in "
                        f"dimension {node.dimension!r}",
                        subject=label,
                    )
                    ok = False
            try:
                varying.moment_index(moment)
            except SchemaError:
                self.report.add(
                    "WIF407",
                    f"change moment {moment!r} is not a leaf of the "
                    f"parameter dimension {varying.parameter.name!r}",
                    subject=label,
                )
                ok = False
        if not ok:
            return
        changes = [ChangeTuple(*spec) for spec in node.changes]
        try:
            hypo = _hypothetical_structure(varying, changes)
        except (InvalidChangeError, SchemaError) as exc:
            self.report.add("WIF407", str(exc), subject=label)
            return
        for member in {change.member for change in changes}:
            for t in range(hypo.universe):
                try:
                    hypo.path_at(member, t)
                except SchemaError as exc:
                    self.report.add("WIF407", str(exc), subject=label)
                    return

    def _check_evaluate(self, node: EvaluateNode) -> None:
        inner = node.input_plan
        if (
            isinstance(inner, EvaluateNode)
            and inner.rule_source == node.rule_source
        ):
            self.report.add(
                "WIF406",
                "consecutive Evaluate nodes are idempotent; one suffices "
                "(optimizer rule collapse-evaluate)",
                subject=node.label(),
            )

    # -- chain-level checks --------------------------------------------------

    def _check_chain(self, chain: "list[PlanNode]") -> None:
        """Cross-operator findings over the whole scenario chain (WIF5xx).

        Per-node checks cannot see these: each Split/Perspective is
        locally valid, but their *composition* is contradictory or dead.
        """
        # WIF501: the same member relocated at the same moment by more
        # than one Split — the later application silently overrides the
        # earlier scenario's intent.
        seen: dict[tuple[str, str, str], PlanNode] = {}
        for node in chain:
            if not isinstance(node, SplitNode):
                continue
            for member, _old_parent, _new_parent, moment in node.changes:
                key = (node.dimension, member, moment)
                first = seen.get(key)
                if first is None:
                    seen[key] = node
                elif first is not node:
                    self.report.add(
                        "WIF501",
                        f"member {member!r} of {node.dimension!r} is "
                        f"relocated at moment {moment!r} by more than one "
                        "Split in this chain; the outer relocation "
                        "overrides the inner scenario's placement",
                        subject=node.label(),
                    )
        # WIF502: a perspective whose moments never intersect the
        # validity-time scope the chain's selections restrict to — the
        # Φ survivors are then filtered out wholesale.
        validity_scope: dict[str, set[int]] = {}
        for node in chain:
            if isinstance(node, SelectNode):
                moments = self._validity_moments(node.predicate)
                if moments:
                    validity_scope.setdefault(node.dimension, set()).update(
                        moments
                    )
        for node in chain:
            if not isinstance(node, PerspectiveNode):
                continue
            scope = validity_scope.get(node.dimension)
            if (
                scope
                and node.perspectives
                and not set(node.perspectives) & scope
            ):
                self.report.add(
                    "WIF502",
                    f"perspective moments {sorted(set(node.perspectives))} "
                    "are disjoint from the chain's validity-time scope "
                    f"{sorted(scope)} on {node.dimension!r}; every survivor "
                    "of Φ is dropped by the selection",
                    subject=node.label(),
                )

    def _validity_moments(self, pred: Pred) -> set[int]:
        """Moments a predicate's ValidityIntersects atoms mention.

        ``Not`` subtrees are excluded: a negated validity atom widens
        rather than restricts the time scope, so nothing below it may
        count toward the WIF502 disjointness proof.
        """
        if isinstance(pred, ValidityIntersects):
            return set(pred.moments)
        if isinstance(pred, (And, Or)):
            moments: set[int] = set()
            for part in pred.parts:
                moments |= self._validity_moments(part)
            return moments
        return set()

    # -- predicate reasoning -------------------------------------------------

    def _predicate_dead(
        self,
        pred: Pred,
        dimension: "Dimension",
        varying: "VaryingDimension | None",
    ) -> bool:
        """Conservatively prove a predicate matches no member at all.

        Only returns True when emptiness is certain from metadata alone.
        """
        if isinstance(pred, MemberEquals):
            return pred.name not in dimension
        if isinstance(pred, MemberIn):
            return all(name not in dimension for name in pred.names)
        if isinstance(pred, DescendantOf):
            return pred.ancestor not in dimension
        if isinstance(pred, ValidityIntersects):
            if varying is None:
                return False
            return all(
                not 0 <= moment < varying.universe for moment in pred.moments
            )
        if isinstance(pred, And):
            if any(
                self._predicate_dead(part, dimension, varying)
                for part in pred.parts
            ):
                return True
            names = [
                part.name for part in pred.parts
                if isinstance(part, MemberEquals)
            ]
            return len(set(names)) > 1
        if isinstance(pred, Or):
            return bool(pred.parts) and all(
                self._predicate_dead(part, dimension, varying)
                for part in pred.parts
            )
        if isinstance(pred, Not):
            return False
        return False
