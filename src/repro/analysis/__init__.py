"""Static semantic analysis for what-if queries and algebra plans.

Public surface:

* :func:`analyze_query` — analyze extended-MDX text (or a parsed
  :class:`~repro.mdx.ast_nodes.MdxQuery`) against a warehouse's metadata;
* :func:`analyze_plan` — analyze a :mod:`repro.core.plans` tree against a
  cube schema;
* the :class:`Diagnostic` / :class:`DiagnosticReport` framework and the
  :data:`CODE_CATALOG` of stable ``WIFnnn`` codes.

Both analyzers are pure metadata passes: no cube data is read.  They run
by default inside :meth:`repro.warehouse.Warehouse.query` and
:func:`repro.core.plans.execute_plan`; pass ``analyze=False`` there to
skip enforcement.
"""

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.analysis.plan_analyzer import PlanAnalyzer, analyze_plan
from repro.analysis.query_analyzer import QueryAnalyzer, analyze_query

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "analyze_query",
    "QueryAnalyzer",
    "analyze_plan",
    "PlanAnalyzer",
]
