"""Diagnostic framework for the static analyzer.

Every finding is a :class:`Diagnostic`: a stable ``WIFnnn`` code, a
:class:`Severity`, a message, and (when the construct came from parsed MDX)
a :class:`~repro.mdx.span.SourceSpan`.  A :class:`DiagnosticReport` is an
ordered collection with the exit-code/enforcement queries the evaluator and
the CLI need.

Code ranges
-----------
* ``WIF0xx`` — name resolution and query shape,
* ``WIF1xx`` — perspective (negative scenario) preconditions,
* ``WIF2xx`` — change-relation (positive scenario) preconditions,
* ``WIF3xx`` — cell-level findings (guaranteed-⊥ accesses, shadowing),
* ``WIF4xx`` — algebra-plan findings (errors and optimizer lints),
* ``WIF5xx`` — cross-operator scenario-chain findings (contradictions,
  dead perspectives).

``CODE_CATALOG`` is the single source of truth; ``docs/static_analysis.md``
documents each entry with a minimal triggering example.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.mdx.span import SourceSpan

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticReport",
    "CODE_CATALOG",
]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are guaranteed failures or ⊥-polluted results and
    block execution (unless the escape hatch is used); ``WARNING`` findings
    are suspicious but runnable; ``INFO`` findings are purely advisory
    (e.g. rewrites the optimizer would apply).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: code -> (default severity, one-line description)
CODE_CATALOG: dict[str, tuple[Severity, str]] = {
    # -- WIF0xx: name resolution / query shape --------------------------------
    "WIF000": (Severity.ERROR, "query text could not be tokenized or parsed"),
    "WIF001": (Severity.ERROR, "FROM references a cube this warehouse does not answer to"),
    "WIF002": (Severity.ERROR, "unresolvable member or dimension reference"),
    "WIF003": (Severity.ERROR, "member reference is ambiguous across dimensions"),
    "WIF004": (Severity.ERROR, "two axis specifications bind the same axis"),
    "WIF005": (Severity.ERROR, "axis line-up is unsupported (no COLUMNS, or more than two axes)"),
    "WIF006": (Severity.ERROR, "named set is defined in terms of itself"),
    "WIF007": (Severity.ERROR, "unknown Descendants flag"),
    # -- WIF1xx: perspective preconditions ------------------------------------
    "WIF101": (Severity.ERROR, "perspective dimension is not a varying dimension"),
    "WIF102": (Severity.ERROR, "perspective point is not a leaf (moment) of the parameter dimension"),
    "WIF103": (Severity.ERROR, "dynamic semantics over an unordered parameter dimension"),
    "WIF104": (Severity.WARNING, "duplicate perspective points"),
    "WIF105": (Severity.ERROR, "visual and non-visual modes mixed within one scenario"),
    # -- WIF2xx: change-relation preconditions --------------------------------
    "WIF201": (Severity.ERROR, "change tuple references an unknown member, parent, or moment"),
    "WIF202": (Severity.ERROR, "relocate between unrelated instances (member not under old parent at the moment)"),
    "WIF203": (Severity.ERROR, "change tuple reparents under a leaf member"),
    "WIF204": (Severity.ERROR, "change relation is inconsistent (conflicting tuples for one member and moment)"),
    "WIF205": (Severity.ERROR, "change relation is cyclic (member reparented under itself or a descendant)"),
    "WIF206": (Severity.ERROR, "change tuple member does not belong to the clause's dimension"),
    # -- WIF3xx: cell-level findings ------------------------------------------
    "WIF301": (Severity.WARNING, "guaranteed-⊥ access: referenced instance has no validity under the scenario"),
    "WIF302": (Severity.WARNING, "slicer coordinate is shadowed by an axis on the same dimension"),
    "WIF303": (Severity.ERROR, "tuple component does not expand to exactly one member instance"),
    # -- WIF4xx: plan findings ------------------------------------------------
    "WIF401": (Severity.ERROR, "plan node references an unknown or non-varying dimension"),
    "WIF402": (Severity.ERROR, "perspective moments outside the parameter universe"),
    "WIF403": (Severity.WARNING, "dead selection: predicate can never match a member"),
    "WIF404": (Severity.INFO, "redundant Φ composition: optimizer would drop the outer static perspective"),
    "WIF405": (Severity.INFO, "selection above Perspective/Split is pushable (optimizer rewrite applies)"),
    "WIF406": (Severity.INFO, "consecutive Evaluate nodes collapse to one"),
    "WIF407": (Severity.ERROR, "split change relation fails its preconditions"),
    # -- WIF5xx: cross-operator scenario-chain findings -----------------------
    "WIF501": (Severity.WARNING, "contradictory scenario chain: the same member is relocated by more than one Split in one chain"),
    "WIF502": (Severity.WARNING, "dead perspective: its moments are disjoint from the chain's validity-time scope"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    message: str
    severity: Severity
    span: SourceSpan | None = None
    #: optional machine-readable anchor (plan node label, member path, ...)
    subject: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODE_CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @classmethod
    def make(
        cls,
        code: str,
        message: str,
        span: SourceSpan | None = None,
        subject: str | None = None,
        severity: Severity | None = None,
    ) -> "Diagnostic":
        """Build a diagnostic with the catalogue's default severity (or an
        explicit override, used when a finding is only *probably* fatal)."""
        if code not in CODE_CATALOG:
            raise ValueError(f"unknown diagnostic code {code!r}")
        if severity is None:
            severity, _ = CODE_CATALOG[code]
        return cls(code, message, severity, span, subject)

    def to_text(self) -> str:
        """Render in the shared span format: ``WIF002 error (line 2, column 9): ...``."""
        where = f" ({self.span})" if self.span is not None else ""
        return f"{self.code} {self.severity}{where}: {self.message}"

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
        if self.subject is not None:
            payload["subject"] = self.subject
        return payload


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics plus the enforcement queries."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        span: SourceSpan | None = None,
        subject: str | None = None,
        severity: Severity | None = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic.make(code, message, span, subject, severity)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "DiagnosticReport | Iterable[Diagnostic]") -> None:
        if isinstance(other, DiagnosticReport):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def has_warnings(self) -> bool:
        return bool(self.warnings)

    @property
    def is_clean(self) -> bool:
        return not self.diagnostics

    def sorted(self) -> "DiagnosticReport":
        """A copy ordered severity-first, then source position."""
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (
                _SEVERITY_ORDER[d.severity],
                d.span.line if d.span else 0,
                d.span.column if d.span else 0,
                d.code,
            ),
        )
        return DiagnosticReport(ordered)

    def exit_code(self, strict: bool = False) -> int:
        """The CLI exit-code contract: 2 = errors, 1 = warnings under
        ``--strict``, 0 = clean (or warnings without ``--strict``)."""
        if self.has_errors:
            return 2
        if strict and self.has_warnings:
            return 1
        return 0

    def to_text(self) -> str:
        if self.is_clean:
            return "no diagnostics"
        return "\n".join(d.to_text() for d in self.diagnostics)

    def to_json(self, **kwargs: object) -> str:
        payload = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.by_severity(Severity.INFO)),
        }
        return json.dumps(payload, ensure_ascii=False, **kwargs)  # type: ignore[arg-type]
