"""Chaos/stress harness for the concurrent query service.

``run_stress`` races three populations against one warehouse for a fixed
duration:

* **clients** submitting a mixed MDX workload through a
  :class:`~repro.service.QueryService` (a slice of it under tight
  deadlines, to exercise shedding and deadline propagation),
* **mutators** hammering ``Cube.set_value`` on the *live* cube
  (re-values, inserts, deletes),
* optionally a **fault arm** thread toggling ``mdx.cell`` transient
  failpoints, which both fails queries mid-cell-loop and feeds the
  circuit breaker.

Two invariants are then checked:

1. **Typed failure only** — every error any thread observed is one of
   the service's typed errors (shedding, breaker, injected fault,
   budget); anything else (a torn dict, a ``RuntimeError`` from
   iterating a mutating set, a deadlock surfacing as timeout) is a
   violation.
2. **Snapshot isolation, bit-identically** — every completed
   non-partial query is replayed *serially* against the snapshot it was
   pinned to, and the grids must match cell-for-cell (``==`` on floats,
   identity on ⊥).  The mutators guarantee the live cube has long since
   diverged, so any read-through to live state shows up as a mismatch.

The harness is deterministic per seed *in its decisions* (which queries,
which mutations); thread interleaving is, of course, the point and is
not.  ``repro stress`` is the CLI front end; the chaos test suite calls
:func:`run_stress` directly.

:func:`run_shard_storm` is the sharded-tier sibling (``repro stress
--sharded``): client threads rotate the three degrade policies against a
:class:`~repro.service.service.ShardedQueryService` while a killer
thread SIGKILLs random shard processes.  Its invariants:

1. **Bit-identical or honestly partial** — every non-partial answer
   (fallback policy, or a lucky window under fail/partial) matches the
   pre-storm reference grid cell-for-cell; a partial answer may replace
   cells with ⊥ *only* while carrying ``degradations`` records, and its
   surviving cells still match the reference.
2. **Typed errors only** — as above.
3. **Eventual recovery** — once the killing stops, the supervisor
   respawns every shard, the breakers close, and a final ``degrade=
   "fail"`` pass over the whole workload returns bit-identical grids.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import (
    CircuitOpenError,
    FaultInjectedError,
    QueryBudgetExceededError,
    ServiceError,
)
from repro.faults import FAULTS
from repro.lint.lockdep import make_lock
from repro.mdx.budget import QueryBudget
from repro.olap.missing import is_missing
from repro.service.breaker import CircuitBreaker
from repro.service.service import QueryService, QueryTicket

if TYPE_CHECKING:
    from repro.warehouse import Warehouse

__all__ = [
    "ShardStormConfig",
    "ShardStormReport",
    "StressConfig",
    "StressReport",
    "run_shard_storm",
    "run_stress",
]

#: the mixed query workload (all valid against the running example)
STRESS_QUERIES: tuple[str, ...] = (
    """
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe], [Lisa], [Tom]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
    """,
    """
    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
    """,
    """
    SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
           {[FTE], [PTE], [Contractor]} ON ROWS
    FROM Warehouse WHERE ([East], [Compensation])
    """,
    """
    WITH PERSPECTIVE {(Mar)} FOR Organization STATIC
    SELECT {Time.[Jan], Time.[Mar], Time.[Jun]} ON COLUMNS,
           {[Joe], [Jane]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
    """,
)

#: errors the chaos run is *allowed* to observe (everything else is a
#: robustness violation)
EXPECTED_ERRORS: tuple[type[BaseException], ...] = (
    ServiceError,  # shedding, circuit open, service stopped
    FaultInjectedError,  # armed failpoints (incl. transient)
    QueryBudgetExceededError,  # tight deadline tripping in axis resolution
)


@dataclass(frozen=True)
class StressConfig:
    """Knobs for one stress run."""

    workers: int = 8
    duration_s: float = 3.0
    queue_depth: int = 64
    seed: int = 0
    #: arm/disarm mdx.cell transient failpoints during the run
    fault_mix: bool = True
    #: fraction of submissions carrying a tight deadline (sheds/degrades)
    deadline_fraction: float = 0.2
    deadline_ms: float = 5.0
    #: cap on serial replays during verification
    verify_limit: int = 500

    @classmethod
    def smoke(cls, seed: int = 0, fault_mix: bool = True) -> "StressConfig":
        """The CI-sized run: same invariants, one second of chaos."""
        return cls(
            workers=4,
            duration_s=1.0,
            queue_depth=16,
            seed=seed,
            fault_mix=fault_mix,
            verify_limit=200,
        )


@dataclass
class StressReport:
    """Outcome of one chaos run; ``passed`` is the headline verdict."""

    config: StressConfig
    duration_s: float = 0.0
    submitted: int = 0
    completed_ok: int = 0
    completed_partial: int = 0
    shed: int = 0
    circuit_rejected: int = 0
    fault_errors: int = 0
    budget_errors: int = 0
    mutations: int = 0
    breaker_trips: int = 0
    verified: int = 0
    #: completed queries whose serial replay differed (must be empty)
    mismatches: list[str] = field(default_factory=list)
    #: untyped exceptions from any thread (must be empty)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches and not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "duration_s": round(self.duration_s, 3),
            "workers": self.config.workers,
            "submitted": self.submitted,
            "completed_ok": self.completed_ok,
            "completed_partial": self.completed_partial,
            "shed": self.shed,
            "circuit_rejected": self.circuit_rejected,
            "fault_errors": self.fault_errors,
            "budget_errors": self.budget_errors,
            "mutations": self.mutations,
            "breaker_trips": self.breaker_trips,
            "verified": self.verified,
            "mismatches": list(self.mismatches),
            "violations": list(self.violations),
        }

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"stress: {verdict} "
            f"({self.config.workers} workers, {self.duration_s:.1f}s)",
            f"  submitted            {self.submitted}",
            f"  completed ok         {self.completed_ok}",
            f"  completed partial    {self.completed_partial}",
            f"  shed (queue/deadline){self.shed}",
            f"  circuit rejected     {self.circuit_rejected}",
            f"  fault errors         {self.fault_errors}",
            f"  budget errors        {self.budget_errors}",
            f"  mutations applied    {self.mutations}",
            f"  breaker trips        {self.breaker_trips}",
            f"  replay-verified      {self.verified}"
            f" ({len(self.mismatches)} mismatches)",
        ]
        for mismatch in self.mismatches[:5]:
            lines.append(f"  MISMATCH: {mismatch}")
        for violation in self.violations[:5]:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def _grids_equal(left: Any, right: Any) -> bool:
    """Bit-identical grid comparison: floats via ``==`` (no tolerance —
    the engine guarantees identical summation order), ⊥ via identity."""
    if len(left.cells) != len(right.cells):
        return False
    for row_a, row_b in zip(left.cells, right.cells):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if is_missing(a) or is_missing(b):
                if not (is_missing(a) and is_missing(b)):
                    return False
            elif a != b:
                return False
    return True


class _Chaos:
    """Shared state for one run (threads append under ``lock``)."""

    def __init__(self, config: StressConfig) -> None:
        self.config = config
        self.stop = threading.Event()
        self.lock = make_lock("_Chaos.lock", reentrant=False)
        self.completed: list[QueryTicket] = []
        self.report = StressReport(config)

    def record_violation(self, where: str, exc: BaseException) -> None:
        with self.lock:
            self.report.violations.append(f"{where}: {exc!r}")


def _client_loop(
    chaos: _Chaos, service: QueryService, client_index: int
) -> None:
    rng = random.Random(chaos.config.seed * 8191 + client_index)
    report = chaos.report
    pending: list[QueryTicket] = []
    while not chaos.stop.is_set():
        text = rng.choice(STRESS_QUERIES)
        deadline = (
            chaos.config.deadline_ms
            if rng.random() < chaos.config.deadline_fraction
            else None
        )
        try:
            ticket = service.submit(
                text,
                analyze=False,
                budget=None
                if deadline is None
                else QueryBudget(deadline_ms=deadline),
            )
        except ServiceError as exc:
            with chaos.lock:
                if isinstance(exc, CircuitOpenError):
                    report.circuit_rejected += 1
                else:
                    report.shed += 1
            continue
        except BaseException as exc:  # untyped submit failure = violation
            chaos.record_violation(f"client-{client_index} submit", exc)
            continue
        with chaos.lock:
            report.submitted += 1
        pending.append(ticket)
        # Harvest a few finished tickets so the pending list stays small.
        if len(pending) >= 4:
            _harvest(chaos, pending, client_index, block=True)
    _harvest(chaos, pending, client_index, block=True, drain=True)


def _harvest(
    chaos: _Chaos,
    pending: list[QueryTicket],
    client_index: int,
    *,
    block: bool = False,
    drain: bool = False,
) -> None:
    report = chaos.report
    while pending:
        ticket = pending[0]
        timeout = 30.0 if (block or drain) else 0.0
        if not ticket.wait(timeout):
            if drain or block:
                chaos.record_violation(
                    f"client-{client_index}",
                    TimeoutError("ticket never completed (deadlock?)"),
                )
                pending.pop(0)
                continue
            return
        pending.pop(0)
        error = ticket.exception()
        with chaos.lock:
            if error is None:
                result = ticket.result()
                if result.degradations:
                    report.completed_partial += 1
                else:
                    report.completed_ok += 1
                    chaos.completed.append(ticket)
            elif isinstance(error, QueryBudgetExceededError):
                report.budget_errors += 1
            elif isinstance(error, FaultInjectedError):
                report.fault_errors += 1
            elif isinstance(error, ServiceError):
                report.shed += 1
            else:
                report.violations.append(
                    f"client-{client_index} result: {error!r}"
                )


def _mutator_loop(
    chaos: _Chaos,
    warehouse: "Warehouse",
    base_addresses: list[Any],
    mutator_index: int,
) -> None:
    rng = random.Random(chaos.config.seed * 524287 + mutator_index)
    cube = warehouse.cube
    report = chaos.report
    while not chaos.stop.is_set():
        try:
            addr = rng.choice(base_addresses)
            roll = rng.random()
            if roll < 0.1:
                cube.set_value(addr, None)  # delete
            else:
                cube.set_value(addr, round(rng.uniform(1.0, 50.0), 2))
            with chaos.lock:
                report.mutations += 1
        except BaseException as exc:
            chaos.record_violation(f"mutator-{mutator_index}", exc)
            return
        time.sleep(0.0005)
    # Leave no deletions behind: restore every address with some value so
    # later runs/tests see a fully populated cube.
    try:
        for addr in base_addresses:
            if is_missing(cube.value(addr)):
                cube.set_value(addr, 1.0)
    except BaseException as exc:  # pragma: no cover - defensive
        chaos.record_violation(f"mutator-{mutator_index} restore", exc)


def _fault_arm_loop(chaos: _Chaos) -> None:
    """Periodically arm a short transient burst on the MDX cell loop."""
    rng = random.Random(chaos.config.seed * 69997 + 7)
    while not chaos.stop.is_set():
        FAULTS.fail_transient("mdx.cell", times=rng.randint(1, 4))
        time.sleep(0.05)
        FAULTS.disarm("mdx.cell")
        time.sleep(0.1)
    FAULTS.disarm("mdx.cell")


def _verify_replays(chaos: _Chaos) -> None:
    """Serially replay completed queries against their pinned snapshots."""
    report = chaos.report
    for ticket in chaos.completed[: chaos.config.verify_limit]:
        try:
            replay = ticket.snapshot.query(ticket.text, analyze=False)
        except BaseException as exc:
            report.mismatches.append(
                f"replay raised {exc!r} (version {ticket.snapshot_version})"
            )
            continue
        report.verified += 1
        concurrent = ticket.result()
        if not _grids_equal(concurrent, replay):
            report.mismatches.append(
                f"grid differs from serial replay at version "
                f"{ticket.snapshot_version}: "
                f"{' '.join(ticket.text.split())[:80]}"
            )


def run_stress(
    config: "StressConfig | None" = None,
    warehouse: "Warehouse | None" = None,
) -> StressReport:
    """Run one chaos storm; see the module docstring for the invariants."""
    config = config or StressConfig()
    if warehouse is None:
        from repro.warehouse import Warehouse
        from repro.workload import build_running_example

        example = build_running_example()
        warehouse = Warehouse(example.schema, example.cube)
    chaos = _Chaos(config)
    breaker = CircuitBreaker(failure_threshold=8, reset_after_ms=50.0)
    service = QueryService(
        warehouse,
        workers=config.workers,
        queue_depth=config.queue_depth,
        breaker=breaker,
    )
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(chaos, service, i),
            name=f"stress-client-{i}",
        )
        for i in range(config.workers)
    ]
    # Collected once, single-threaded, before the storm: iterating the
    # leaf dict while mutators run would itself be a race.
    base_addresses = [addr for addr, _ in warehouse.cube.leaf_cells()]
    threads.extend(
        threading.Thread(
            target=_mutator_loop,
            args=(chaos, warehouse, base_addresses, i),
            name=f"stress-mutator-{i}",
        )
        for i in range(2)
    )
    if config.fault_mix:
        threads.append(
            threading.Thread(
                target=_fault_arm_loop, args=(chaos,), name="stress-faults"
            )
        )
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(config.duration_s)
    chaos.stop.set()
    for thread in threads:
        thread.join(timeout=60.0)
        if thread.is_alive():  # pragma: no cover - defensive
            chaos.record_violation(
                thread.name, TimeoutError("thread failed to stop")
            )
    service.close(drain=True, timeout=60.0)
    chaos.report.duration_s = time.perf_counter() - started
    chaos.report.breaker_trips = breaker.trips
    _verify_replays(chaos)
    return chaos.report


# ---------------------------------------------------------------------------
# sharded shard-kill storm
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStormConfig:
    """Knobs for one sharded chaos storm."""

    clients: int = 4
    duration_s: float = 3.0
    n_shards: int = 2
    seed: int = 0
    #: mean sleep between SIGKILLs of a random shard
    kill_interval_s: float = 0.25
    #: per-query RPC deadline during the storm
    rpc_timeout_ms: float = 10_000.0
    #: hedge threshold for the fallback policy
    hedge_ms: float = 250.0
    #: post-storm window for respawns + breaker closes + verification
    recovery_timeout_s: float = 60.0

    @classmethod
    def smoke(cls, seed: int = 0) -> "ShardStormConfig":
        """The CI-sized storm: same invariants, shorter clock."""
        return cls(
            clients=3,
            duration_s=1.5,
            seed=seed,
            kill_interval_s=0.3,
        )


@dataclass
class ShardStormReport:
    """Outcome of one shard-kill storm; ``passed`` is the verdict."""

    config: ShardStormConfig
    duration_s: float = 0.0
    queries: int = 0
    ok: int = 0
    partial: int = 0
    typed_errors: int = 0
    kills: int = 0
    respawns: int = 0
    recovered: bool = False
    #: grids that differed from the pre-storm reference (must be empty)
    mismatches: list[str] = field(default_factory=list)
    #: untyped errors / contract breaches (must be empty)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.recovered and not self.mismatches and not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "duration_s": round(self.duration_s, 3),
            "clients": self.config.clients,
            "n_shards": self.config.n_shards,
            "queries": self.queries,
            "ok": self.ok,
            "partial": self.partial,
            "typed_errors": self.typed_errors,
            "kills": self.kills,
            "respawns": self.respawns,
            "recovered": self.recovered,
            "mismatches": list(self.mismatches),
            "violations": list(self.violations),
        }

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"shard storm: {verdict} "
            f"({self.config.clients} clients, {self.config.n_shards} shards, "
            f"{self.duration_s:.1f}s)",
            f"  queries              {self.queries}",
            f"  ok (bit-identical)   {self.ok}",
            f"  partial (⊥ cells)    {self.partial}",
            f"  typed errors         {self.typed_errors}",
            f"  shards killed        {self.kills}",
            f"  respawns             {self.respawns}",
            f"  recovered            {self.recovered}",
        ]
        for mismatch in self.mismatches[:5]:
            lines.append(f"  MISMATCH: {mismatch}")
        for violation in self.violations[:5]:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


class _ShardChaos:
    """Shared state for one storm (threads append under ``lock``)."""

    def __init__(self, config: ShardStormConfig) -> None:
        self.config = config
        self.stop = threading.Event()
        self.lock = make_lock("_ShardChaos.lock", reentrant=False)
        self.report = ShardStormReport(config)

    def record_violation(self, where: str, exc: "BaseException | str") -> None:
        with self.lock:
            self.report.violations.append(
                f"{where}: {exc!r}" if isinstance(exc, BaseException)
                else f"{where}: {exc}"
            )


def _matches_reference(result: Any, reference: Any, *, allow_missing: bool) -> bool:
    """Cells equal the reference bit-for-bit; with ``allow_missing`` an
    actual ⊥ is also accepted (a degraded cell), but a *value* must
    still be the reference's value — degradation may omit, never alter."""
    if len(result.cells) != len(reference.cells):
        return False
    for row_actual, row_expected in zip(result.cells, reference.cells):
        if len(row_actual) != len(row_expected):
            return False
        for actual, expected in zip(row_actual, row_expected):
            if is_missing(actual):
                if allow_missing or is_missing(expected):
                    continue
                return False
            if is_missing(expected) or actual != expected:
                return False
    return True


def _storm_client_loop(
    chaos: _ShardChaos,
    service: Any,
    references: "dict[str, Any]",
    client_index: int,
) -> None:
    rng = random.Random(chaos.config.seed * 7919 + client_index)
    report = chaos.report
    policies = ("fallback", "partial", "fail")
    iteration = 0
    while not chaos.stop.is_set():
        text = rng.choice(STRESS_QUERIES)
        policy = policies[(iteration + client_index) % len(policies)]
        iteration += 1
        try:
            result = service.execute(text, analyze=False, degrade=policy)
        except EXPECTED_ERRORS:
            with chaos.lock:
                report.queries += 1
                report.typed_errors += 1
            continue
        except BaseException as exc:  # untyped error = violation
            chaos.record_violation(
                f"storm-client-{client_index} ({policy})", exc
            )
            continue
        reference = references[text]
        if result.degradations:
            matched = _matches_reference(result, reference, allow_missing=True)
            with chaos.lock:
                report.queries += 1
                report.partial += 1
                if policy != "partial":
                    report.violations.append(
                        f"storm-client-{client_index}: degraded grid under "
                        f"{policy!r} policy (only 'partial' may return ⊥)"
                    )
                elif not matched:
                    report.mismatches.append(
                        f"partial grid altered a value: "
                        f"{' '.join(text.split())[:60]}"
                    )
        else:
            matched = _matches_reference(result, reference, allow_missing=False)
            with chaos.lock:
                report.queries += 1
                report.ok += 1
                if not matched:
                    report.mismatches.append(
                        f"non-partial grid differs from reference under "
                        f"{policy!r}: {' '.join(text.split())[:60]}"
                    )


def _killer_loop(chaos: _ShardChaos, service: Any) -> None:
    """SIGKILL a random shard on a jittered cadence until the storm ends."""
    rng = random.Random(chaos.config.seed * 104729 + 31)
    while not chaos.stop.is_set():
        time.sleep(chaos.config.kill_interval_s * (0.5 + rng.random()))
        if chaos.stop.is_set():
            break
        shard = rng.randrange(service.n_shards)
        try:
            service.supervisor.kill(shard)
        except BaseException as exc:  # pragma: no cover - defensive
            chaos.record_violation("storm-killer", exc)
            return
        with chaos.lock:
            chaos.report.kills += 1


def run_shard_storm(
    config: "ShardStormConfig | None" = None,
    workload: str = "running",
) -> ShardStormReport:
    """Run one shard-kill storm; see the module docstring's invariants."""
    from repro.service.service import ShardedQueryService
    from repro.service.supervisor import SupervisorConfig

    config = config or ShardStormConfig()
    chaos = _ShardChaos(config)
    service = ShardedQueryService(
        workload,
        n_shards=config.n_shards,
        rpc_timeout_ms=config.rpc_timeout_ms,
        hedge_ms=config.hedge_ms,
        supervisor_config=SupervisorConfig(
            heartbeat_s=0.05,
            backoff_base_ms=20.0,
            backoff_max_ms=250.0,
            # Generous: the storm's kills must never park a shard as
            # "failed" — the cap's own semantics get a dedicated test.
            storm_window_s=10.0,
            storm_cap=500,
            seed=config.seed,
        ),
    )
    try:
        # The reference grids: the sharded storm never mutates the cube,
        # so every non-partial answer must reproduce these exactly.
        references = {
            text: service.warehouse.query(text, analyze=False)
            for text in STRESS_QUERIES
        }
        threads = [
            threading.Thread(
                target=_storm_client_loop,
                args=(chaos, service, references, i),
                name=f"storm-client-{i}",
            )
            for i in range(config.clients)
        ]
        threads.append(
            threading.Thread(
                target=_killer_loop, args=(chaos, service), name="storm-killer"
            )
        )
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        time.sleep(config.duration_s)
        chaos.stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
            if thread.is_alive():  # pragma: no cover - defensive
                chaos.record_violation(
                    thread.name, TimeoutError("thread failed to stop")
                )
        chaos.report.duration_s = time.perf_counter() - started

        # -- eventual recovery ------------------------------------------------
        deadline = time.monotonic() + config.recovery_timeout_s
        while time.monotonic() < deadline:
            if service.health()["ready"]:
                chaos.report.recovered = True
                break
            time.sleep(0.05)
        if not chaos.report.recovered:
            chaos.record_violation(
                "recovery",
                f"pool not ready within {config.recovery_timeout_s:.0f}s: "
                f"{service.health()['shards']}",
            )
        else:
            for text, reference in references.items():
                try:
                    replay = service.execute(text, analyze=False, degrade="fail")
                except BaseException as exc:
                    chaos.record_violation("recovery replay", exc)
                    continue
                if not _matches_reference(
                    replay, reference, allow_missing=False
                ):
                    chaos.report.mismatches.append(
                        "post-recovery grid differs from reference: "
                        f"{' '.join(text.split())[:60]}"
                    )
        chaos.report.respawns = sum(
            service.supervisor.restarts(shard)
            for shard in range(service.n_shards)
        )
    finally:
        service.close()
    return chaos.report
