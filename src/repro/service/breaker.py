"""Circuit breaker for the query service.

The classic three-state machine, tuned for the failure modes this engine
actually produces (armed failpoints and storage corruption):

* **closed** — normal operation; consecutive breaker-relevant failures
  are counted, successes reset the count.
* **open** — ``failure_threshold`` consecutive failures tripped it; every
  admission fails fast with :class:`~repro.errors.CircuitOpenError`
  (cheaper for the caller than queuing work that will fail, and it takes
  load off a struggling store).
* **half-open** — after ``reset_after_ms`` of backoff, exactly one probe
  query is admitted; success closes the breaker, failure re-opens it and
  restarts the backoff.

Only *infrastructure* errors count toward tripping — injected faults
(:class:`~repro.errors.FaultInjectedError`) and storage/corruption
errors (:class:`~repro.errors.StorageError`).  A user writing queries
that raise evaluation errors must never open the circuit for everyone
else.

State is exported as the ``circuit_state`` gauge (0 = closed, 1 = open,
2 = half-open) via the callback wired in by the service.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

from repro.errors import FaultInjectedError, ShardError, StorageError
from repro.lint.lockdep import make_lock

__all__ = ["BreakerState", "CircuitBreaker"]

#: error types that count toward tripping the breaker.  ShardError is a
#: dead/unreachable shard process — infrastructure, exactly the failure
#: mode a per-shard breaker exists for.
TRIPPING_ERRORS: tuple[type[BaseException], ...] = (
    FaultInjectedError,
    StorageError,
    ShardError,
)


class BreakerState(enum.IntEnum):
    """Breaker state; the integer value is the ``circuit_state`` gauge."""

    CLOSED = 0
    OPEN = 1
    HALF_OPEN = 2


class CircuitBreaker:
    """Thread-safe three-state circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive breaker-relevant failures that trip the circuit.
    reset_after_ms:
        Backoff before an open circuit half-opens for one probe.
    clock:
        Monotonic clock in *seconds* (injectable for deterministic
        tests); defaults to ``time.monotonic``.
    on_state_change:
        Called with the new :class:`BreakerState` on every transition —
        the service points this at the ``circuit_state`` gauge.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_ms: float = 1000.0,
        clock: "Callable[[], float] | None" = None,
        on_state_change: "Callable[[BreakerState], None] | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_ms < 0:
            raise ValueError("reset_after_ms must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after_ms = reset_after_ms
        self._clock = clock or time.monotonic
        self._on_state_change = on_state_change
        self._lock = make_lock("CircuitBreaker._lock", reentrant=False)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: total trips (closed/half-open -> open), for metrics
        self.trips = 0

    # -- state ------------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """The current state (advancing open -> half-open if backoff
        elapsed — the breaker has no timer thread; time is observed on
        access)."""
        with self._lock:
            self._advance()
            return self._state

    def _advance(self) -> None:  # reprolint: locked
        """Open -> half-open once the backoff has elapsed (lock held)."""
        if self._state is BreakerState.OPEN:
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            if elapsed_ms >= self.reset_after_ms:
                self._set_state(BreakerState.HALF_OPEN)
                self._probe_in_flight = False

    def _set_state(self, state: BreakerState) -> None:  # reprolint: locked
        if state is self._state:
            return
        self._state = state
        if state is BreakerState.OPEN:
            self._opened_at = self._clock()
            self.trips += 1
        if self._on_state_change is not None:
            self._on_state_change(state)

    # -- admission --------------------------------------------------------------

    def allow(self) -> bool:
        """Whether a new query may be admitted right now.

        Closed: always.  Open: never (until backoff elapses).  Half-open:
        exactly one probe at a time — concurrent submitters race for the
        probe slot and the losers are rejected.
        """
        with self._lock:
            self._advance()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probe_in_flight:
                    return False
                self._probe_in_flight = True
                return True
            return False

    def probe_allowed(self) -> bool:
        """Acquire the half-open probe slot *only* — unlike
        :meth:`allow`, a closed breaker returns False, so the shard
        supervisor can ask "does this breaker need a recovery probe?"
        without spending anything on healthy shards.  The caller owns
        the slot on True and must report the probe's outcome via
        :meth:`record_success`/:meth:`record_failure`.
        """
        with self._lock:
            self._advance()
            if self._state is not BreakerState.HALF_OPEN:
                return False
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    # -- outcome reporting -------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state is BreakerState.HALF_OPEN:
                self._set_state(BreakerState.CLOSED)

    def record_failure(self, error: BaseException) -> None:
        """Report a query failure; only :data:`TRIPPING_ERRORS` count."""
        if not isinstance(error, TRIPPING_ERRORS):
            return
        with self._lock:
            self._probe_in_flight = False
            if self._state is BreakerState.HALF_OPEN:
                # The probe failed: straight back to open, fresh backoff.
                self._set_state(BreakerState.OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._set_state(BreakerState.OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self._state.name}, "
            f"{self._consecutive_failures}/{self.failure_threshold} failures, "
            f"{self.trips} trips)"
        )
