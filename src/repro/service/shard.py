"""Shard processes for the multi-process serving tier.

One shard process owns a disjoint set of the shard dimension's members —
the co-residency groups of :func:`~repro.core.merge_graph.plan_axis_shards`
guarantee every member's instance slots land wholly on one shard, so any
cell whose shard-dimension coordinate resolves to one member can be
evaluated by that shard alone, bit-identically to the single-process
engine (the shard's sub-cube is the restriction of the full cube in
global insertion order, and the strict reduction is order-defined).

Two request shapes cross the pipe:

* ``cells`` — evaluate the query's scenario chain on the shard's
  sub-warehouse and return ``effective_value`` for each assigned address;
* ``partial`` — for spanning cells (coordinate above any single member),
  return the scope's ``(global position, value)`` pairs so the
  coordinator can merge shards' contributions back into the exact global
  insertion order before the strict reduction.

Workers are spawned (never forked: the coordinator is multithreaded) and
rebuild their workload by name — :func:`build_workload` is the shared
registry — so nothing but the :class:`ShardSpec` is pickled.  Faults are
re-armed from ``REPRO_FAULTS`` inside each worker, and the ``shard.exec``
failpoint fires per request so the fault matrix reaches the remote side.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.merge_graph import ShardPlan, plan_axis_shards
from repro.errors import ReproError, ShardError
from repro.faults import FAULTS, inject_io_fault, register_failpoint
from repro.olap.cube import Cube
from repro.olap.missing import MISSING, is_missing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.warehouse import Warehouse

__all__ = [
    "ShardClient",
    "ShardSpec",
    "build_shard_plan",
    "build_workload",
    "restrict_warehouse",
    "shard_worker_main",
]

Address = tuple[str, ...]

FP_SERVE_SCATTER = register_failpoint("serve.scatter")
FP_SERVE_GATHER = register_failpoint("serve.gather")
FP_SHARD_EXEC = register_failpoint("shard.exec")


def build_workload(name: str, params: "tuple[tuple[str, Any], ...]" = ()) -> "Warehouse":
    """Rebuild a named workload warehouse (shared by coordinator and
    shard processes, so both sides derive identical cubes and plans)."""
    from repro.warehouse import Warehouse

    if name == "running":
        from repro.workload.running_example import build_running_example

        example = build_running_example()
        return Warehouse(example.schema, example.cube)
    if name == "workforce":
        from repro.workload.workforce import WorkforceConfig, build_workforce

        config = WorkforceConfig(**dict(params)) if params else None
        return build_workforce(config).warehouse
    raise ShardError(f"unknown workload {name!r}")


def build_shard_plan(
    warehouse: "Warehouse", dimension: str, n_shards: int, chunk: int = 8
) -> ShardPlan:
    """The deterministic placement for one warehouse: slots per leaf
    member come from the varying registry in axis order, so any process
    rebuilding the workload derives the identical plan."""
    varying = warehouse.schema.varying_dimension(dimension)
    slots_of_member: dict[str, list[str]] = {}
    for member in varying.dimension.leaf_members():
        slots = [inst.full_path for inst in varying.instances_of(member.name)]
        if slots:
            slots_of_member[member.name] = slots
    return plan_axis_shards(dimension, slots_of_member, n_shards, chunk)


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its slice of the warehouse.

    Pure data (picklable): the workload is rebuilt by name inside the
    worker, never shipped.
    """

    workload: str
    dimension: str
    owned_members: tuple[str, ...]
    shard_index: int
    n_shards: int
    workload_params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)


def restrict_warehouse(
    full: "Warehouse", dimension: str, owned_members: Sequence[str]
) -> "tuple[Warehouse, dict[Address, int]]":
    """The shard's sub-warehouse plus global insertion positions.

    The sub-cube holds exactly the full cube's leaf cells whose shard-
    dimension member is owned, inserted in global order (so the shard's
    local insertion order is the restriction of the global one — the
    property the strict bit-identical reduction rests on), plus every
    stored-derived cell and named set.  ``global_pos`` maps each owned
    leaf address to its position in the full cube's insertion order.
    """
    from repro.warehouse import Warehouse

    schema = full.schema
    dim_index = schema.dim_index(dimension)
    owned = set(owned_members)
    sub_cube = Cube(schema, full.cube.rules)
    global_pos: dict[Address, int] = {}
    for position, (addr, value) in enumerate(full.cube.leaf_cells()):
        if addr[dim_index].rsplit("/", 1)[-1] in owned:
            sub_cube.set_value(addr, value)
            global_pos[addr] = position
    for addr, value in full.cube.stored_derived_cells():
        sub_cube.set_value(addr, value)
    sub = Warehouse(schema, sub_cube, name=full.name, aliases=full.aliases)
    for named_set in full.named_sets():
        sub.define_named_set(named_set.name, named_set.members)
    return sub, global_pos


def _encode_value(value: object) -> "float | None":
    """MISSING crosses the pipe as ``None`` — ``is_missing`` is an
    identity check, and a pickled singleton is not the singleton."""
    return None if is_missing(value) else float(value)  # type: ignore[arg-type]


def _decode_value(value: "float | None") -> object:
    return MISSING if value is None else value


class _ShardRuntime:
    """Worker-process state: the restricted warehouse plus caches."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        full = build_workload(spec.workload, spec.workload_params)
        self.warehouse, self.global_pos = restrict_warehouse(
            full, spec.dimension, spec.owned_members
        )
        self._parsed: dict[str, Any] = {}

    def _context(self, text: str):
        from repro.mdx.evaluator import _Context
        from repro.mdx.parser import parse_query

        query = self._parsed.get(text)
        if query is None:
            query = parse_query(text)
            self._parsed[text] = query
        # The scenario cache on the shard's warehouse makes repeated
        # fingerprints one dict probe, exactly like local serving.
        return _Context(self.warehouse, query)

    def handle(self, request: "dict[str, Any]") -> "dict[str, Any]":
        op = request["op"]
        if op == "ping":
            return {
                "ok": True,
                "shard": self.spec.shard_index,
                "leaves": self.warehouse.cube.n_leaf_cells,
                "members": len(self.spec.owned_members),
            }
        if op == "sleep":
            # Diagnostic op for the chaos/hedge tests: a shard that is
            # alive but slow.  Exempt from shard.exec like ping.
            import time as time_module

            time_module.sleep(float(request.get("seconds", 0.0)))
            return {"ok": True, "shard": self.spec.shard_index}
        inject_io_fault(FP_SHARD_EXEC)
        if op == "cells":
            context = self._context(request["text"])
            view = context.view
            values = [
                _encode_value(view.effective_value(tuple(addr)))
                for addr in request["addresses"]
            ]
            return {"ok": True, "values": values}
        if op == "partial":
            cube = self.warehouse.cube
            index = cube.rollup_index()
            leaf_store = cube._leaf_cells
            global_pos = self.global_pos
            partials = []
            for addr in request["addresses"]:
                positions: list[int] = []
                values: list[float] = []
                for cell_addr, value in index.iter_scope_cells(
                    leaf_store, tuple(addr)
                ):
                    positions.append(global_pos[cell_addr])
                    values.append(value)
                partials.append((positions, values))
            return {"ok": True, "partials": partials}
        return {"ok": False, "error": "ShardError", "message": f"unknown op {op!r}"}


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker-process entry point: serve pipe requests until shutdown.

    Errors are answered, never fatal: the exception's type name and
    message go back over the pipe and the coordinator re-raises the
    closest typed equivalent, so a poisoned query cannot kill a shard.
    """
    FAULTS.arm_from_env()
    try:
        runtime = _ShardRuntime(spec)
    except BaseException as exc:  # startup failure: report, then exit
        try:
            conn.send(
                {"ok": False, "error": type(exc).__name__, "message": str(exc)}
            )
        finally:
            conn.close()
        return
    conn.send({"ok": True, "shard": spec.shard_index})
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None or request.get("op") == "shutdown":
            conn.send({"ok": True})
            break
        try:
            response = runtime.handle(request)
        except BaseException as exc:
            response = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        try:
            conn.send(response)
        except (EOFError, OSError):
            break
    conn.close()


class _Pending:
    """One in-flight shard request: a slot the dispatcher fills."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: "dict[str, Any] | None" = None
        self.error: "BaseException | None" = None


def _remote_error(name: str, message: str, shard: int) -> BaseException:
    """Map a remote exception's type name back into the taxonomy."""
    from repro import errors as errors_module

    cls = getattr(errors_module, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(f"shard {shard}: {message}")
        except TypeError:
            pass  # constructor wants more than a message
    return ShardError(f"shard {shard}: {name}: {message}", shard=shard)


class ShardClient:
    """Coordinator-side handle to one shard process.

    A dedicated dispatcher thread serializes pipe traffic (send/recv
    pairs), so any number of coordinator threads can scatter requests
    concurrently; each caller blocks only on its own :class:`_Pending`
    event.  The ``serve.scatter`` failpoint fires in the submitting
    thread before anything is enqueued, ``serve.gather`` in the waiting
    thread before a response is surfaced — both therefore propagate into
    the request that armed them, like every other failpoint.

    Death is never a hang: the first pipe error marks the client *down*,
    fails the in-flight pending, and the dispatcher then fail-fasts every
    queued and future pending with :class:`~repro.errors.ShardError`
    instead of touching the dead pipe.  ``gather`` applies
    ``rpc_timeout`` when the caller passes no timeout, so a stuck (alive
    but wedged) worker surfaces as a typed timeout rather than an
    unbounded wait.  A down client stays safe to ``close()`` — the
    supervisor replaces it with a fresh one.
    """

    def __init__(
        self,
        spec: ShardSpec,
        *,
        start_timeout: float = 60.0,
        rpc_timeout: float = 60.0,
    ) -> None:
        self.spec = spec
        self.shard_index = spec.shard_index
        self.rpc_timeout = rpc_timeout
        self._closed = False
        self._down = threading.Event()
        self._down_reason = ""
        ctx = multiprocessing.get_context("spawn")
        self._conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, spec),
            name=f"repro-shard-{spec.shard_index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        try:
            if not self._conn.poll(start_timeout):
                raise ShardError(
                    f"shard {spec.shard_index} did not start within "
                    f"{start_timeout:.3g}s",
                    shard=spec.shard_index,
                )
            hello = self._conn.recv()
        except ShardError:
            self._abort_start()
            raise
        except (EOFError, OSError) as exc:
            self._abort_start()
            raise ShardError(
                f"shard {spec.shard_index} died during startup: {exc!r}",
                shard=spec.shard_index,
            ) from exc
        if not hello.get("ok"):
            self._abort_start()
            raise _remote_error(
                hello.get("error", "ShardError"),
                hello.get("message", "startup failed"),
                spec.shard_index,
            )
        self._queue: "queue.Queue[tuple[dict[str, Any], _Pending] | None]" = (
            queue.Queue()
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-shard-client-{spec.shard_index}",
            daemon=True,
        )
        self._dispatcher.start()

    def _abort_start(self) -> None:
        """Reap a worker whose startup failed: no pipe leak, no zombie,
        no dispatcher thread (it is only started after a good hello)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(5.0)

    # -- dispatcher ---------------------------------------------------------------

    def _down_error(self) -> ShardError:
        reason = self._down_reason or "process is down"
        return ShardError(
            f"shard {self.shard_index} is down: {reason}",
            shard=self.shard_index,
        )

    def mark_down(self, reason: str) -> None:
        """Declare the worker dead (pipe error, ``is_alive()`` false, or
        a deliberate chaos kill): every queued and future request fails
        fast with :class:`~repro.errors.ShardError` from here on."""
        if not self._down.is_set():
            self._down_reason = reason
            self._down.set()

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            payload, pending = item
            if self._down.is_set():
                # Fail fast: never touch the pipe of a dead worker, and
                # never leave a queued pending waiting forever.
                pending.error = self._down_error()
                pending.event.set()
                continue
            try:
                self._conn.send(payload)
                pending.response = self._conn.recv()
            except BaseException as exc:
                self.mark_down(f"connection failed: {exc!r}")
                pending.error = self._down_error()
            pending.event.set()

    # -- client API ---------------------------------------------------------------

    def submit(self, payload: "dict[str, Any]") -> _Pending:
        """Scatter one request; returns the pending slot to gather on."""
        inject_io_fault(FP_SERVE_SCATTER)
        if self._down.is_set() or self._closed:
            raise self._down_error()
        pending = _Pending()
        self._queue.put((payload, pending))
        return pending

    def gather(self, pending: _Pending, timeout: "float | None" = None) -> "dict[str, Any]":
        """Wait for one scattered request and surface its response.

        ``timeout=None`` applies the client's ``rpc_timeout`` — a wedged
        worker must surface as a typed error, never an unbounded block.
        """
        if timeout is None:
            timeout = self.rpc_timeout
        if not pending.event.wait(timeout):
            raise ShardError(
                f"shard {self.shard_index} timed out after {timeout:.3g}s",
                shard=self.shard_index,
            )
        inject_io_fault(FP_SERVE_GATHER)
        if pending.error is not None:
            raise pending.error
        response = pending.response
        assert response is not None
        if not response.get("ok"):
            raise _remote_error(
                response.get("error", "ShardError"),
                response.get("message", ""),
                self.shard_index,
            )
        return response

    def request(self, payload: "dict[str, Any]", timeout: "float | None" = None) -> "dict[str, Any]":
        """Scatter + gather in one call (health checks, tests)."""
        return self.gather(self.submit(payload), timeout)

    def alive(self) -> bool:
        return not self._down.is_set() and self.process.is_alive()

    def down(self) -> bool:
        return self._down.is_set()

    def kill(self) -> None:
        """SIGKILL the worker (chaos harness): no cleanup, no goodbye —
        exactly the failure the supervisor exists to heal."""
        self.mark_down("killed (chaos)")
        if self.process.is_alive():
            self.process.kill()

    def close(self, timeout: float = 5.0) -> None:
        """Shut the worker down; safe on a client whose process already
        exited (or never finished starting), and idempotent."""
        if self._closed:
            return
        self._closed = True
        dispatcher = getattr(self, "_dispatcher", None)
        if dispatcher is not None:
            # Drain the dispatcher first so no request races the shutdown.
            self._queue.put(None)
            dispatcher.join(timeout)
        if not self._down.is_set():
            try:
                self._conn.send({"op": "shutdown"})
                if self._conn.poll(timeout):
                    self._conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            # A wedged worker (e.g. mid-``sleep`` op) ignores shutdown:
            # escalate to terminate, then kill.
            self.process.terminate()
            self.process.join(timeout)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.kill()
                self.process.join(timeout)
