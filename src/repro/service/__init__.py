"""Concurrent query service: snapshot isolation, admission control,
overload protection.

The paper's what-if workload is read-mostly: many scenario queries
against one slowly mutating base cube.  This package makes that safe and
bounded under real concurrency:

* :class:`~repro.service.snapshot.WarehouseSnapshot`
  (``Warehouse.snapshot()``) — an immutable read view pinned to one
  ``Cube.version``.  In-flight queries never observe a torn mutation,
  and writers never block readers.
* :class:`~repro.service.service.QueryService` — a bounded worker pool
  behind ``submit()``: queue-depth admission control with typed load
  shedding (:class:`~repro.errors.ServiceOverloadedError`), per-query
  deadline propagation into :class:`~repro.mdx.budget.QueryBudget`, and
  a :class:`~repro.service.breaker.CircuitBreaker` that trips on
  repeated failpoint/corruption errors and half-opens after backoff.
* :mod:`~repro.service.stress` — the chaos harness behind
  ``repro stress``: races concurrent queries against mutations and armed
  failpoints, then replays every completed query serially against its
  pinned snapshot and asserts bit-identical grids.
* :class:`~repro.service.service.ShardedQueryService` — the
  multi-process tier: each shard process owns a disjoint set of the
  varying dimension's members (co-residency decided by the merge
  dependency graph, see :func:`repro.core.merge_graph.plan_axis_shards`),
  a coordinator scatter-gathers partial rollups and merges them with the
  strict bit-identical reduction, and per-shard circuit breakers fail
  fast when a shard process dies.
* :class:`~repro.service.supervisor.ShardSupervisor` — the self-healing
  layer over the shard pool: liveness heartbeats, exponential-backoff
  respawn with a restart-storm cap, and breaker probe routing, so a
  SIGKILLed shard comes back without operator action.  Coupled with the
  coordinator's per-RPC deadlines, retries, hedging, and ``degrade``
  policies (``fail`` | ``fallback`` | ``partial``), shard death costs
  at most one degraded answer — never a hang, never a wrong value.
* :mod:`~repro.service.http_api` — the stdlib HTTP front end behind
  ``repro serve --http``: ``POST /v1/query``, ``POST /v1/explain``,
  ``GET /metrics`` (Prometheus), ``GET /healthz`` (liveness),
  ``GET /readyz`` (readiness), with per-tenant admission quotas
  (:class:`~repro.service.http_api.TenantQuotas`).

See ``docs/robustness.md`` for the service model and guarantees, and
``docs/serving.md`` for the sharded serving tier and its failure
semantics.
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.http_api import TenantQuotas, make_server, serve_http
from repro.service.service import (
    QueryService,
    QueryTicket,
    ShardedQueryService,
)
from repro.service.snapshot import WarehouseSnapshot
from repro.service.stress import (
    ShardStormConfig,
    ShardStormReport,
    StressConfig,
    StressReport,
    run_shard_storm,
    run_stress,
)
from repro.service.supervisor import ShardSupervisor, SupervisorConfig

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "QueryService",
    "QueryTicket",
    "ShardStormConfig",
    "ShardStormReport",
    "ShardSupervisor",
    "ShardedQueryService",
    "StressConfig",
    "StressReport",
    "SupervisorConfig",
    "TenantQuotas",
    "WarehouseSnapshot",
    "make_server",
    "run_shard_storm",
    "run_stress",
    "serve_http",
]
