"""The concurrent query service: a bounded worker pool with admission
control, deadline propagation, and overload protection.

``submit()`` is the whole client API: it pins a snapshot of the
warehouse at the current cube version, enqueues the query, and returns a
:class:`QueryTicket` immediately.  Every robustness decision happens at
well-defined points:

* **Admission** — the circuit breaker is consulted first
  (:class:`~repro.errors.CircuitOpenError` fails fast while the store is
  sick), then the bounded queue: a full queue sheds the query with
  :class:`~repro.errors.ServiceOverloadedError` *at submit time*.
  Nothing in the submit path can block, so overload can never deadlock
  the caller.
* **Execution** — a worker dequeues the job, charges the queue wait
  against the query's deadline (``QueryBudget.narrowed``), and runs it
  against the snapshot pinned at submit.  A deadline that fully expired
  in the queue sheds instead of executing.  If the submitter was inside
  a traced span, the worker attaches to it via ``Tracer.child_scope`` so
  the evaluation is not an orphan trace.
* **Completion** — the outcome lands on the ticket (result or typed
  error), the breaker hears about success/failure, and the service
  counters (``service_queries_total{status}``, ``service_shed_total``,
  ``service_queue_wait_ms``, ``circuit_state``) are updated on the
  warehouse's metrics registry.

Results are exactly what ``Warehouse.query`` returns — including partial
(⊥-degraded) grids under budget breach, PR 2's graceful-degradation
contract, now reachable under concurrency.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    CircuitOpenError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.lint.lockdep import make_lock
from repro.mdx.budget import QueryBudget
from repro.obs.trace import TRACER, Span
from repro.service.breaker import BreakerState, CircuitBreaker

if TYPE_CHECKING:
    from repro.mdx.result import MdxResult
    from repro.service.snapshot import WarehouseSnapshot
    from repro.warehouse import Warehouse

__all__ = ["QueryService", "QueryTicket"]


class QueryTicket:
    """A handle to one submitted query.

    ``result()`` blocks until the worker finishes (or ``timeout``
    elapses, raising :class:`TimeoutError`), then returns the
    :class:`~repro.mdx.result.MdxResult` or re-raises the query's error
    in the caller's thread.
    """

    def __init__(self, text: str, snapshot: "WarehouseSnapshot") -> None:
        self.text = text
        #: the immutable view this query is pinned to
        self.snapshot = snapshot
        #: the base-cube version of that view
        self.snapshot_version = snapshot.version
        self._done = threading.Event()
        self._result: "MdxResult | None" = None
        self._error: "BaseException | None" = None

    # -- completion (service side) ------------------------------------------------

    def _complete(
        self,
        result: "MdxResult | None",
        error: "BaseException | None" = None,
    ) -> None:
        self._result = result
        self._error = error
        self._done.set()

    # -- inspection (client side) --------------------------------------------------

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._done.wait(timeout)

    def exception(self, timeout: "float | None" = None) -> "BaseException | None":
        if not self._done.wait(timeout):
            raise TimeoutError("query is still running")
        return self._error

    def result(self, timeout: "float | None" = None) -> "MdxResult":
        if not self._done.wait(timeout):
            raise TimeoutError("query is still running")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._done.is_set():
            state = "error" if self._error is not None else "done"
        return f"QueryTicket({state}, version={self.snapshot_version})"


class _Job:
    """One queued query (internal)."""

    __slots__ = (
        "ticket",
        "analyze",
        "budget",
        "deadline_ms",
        "submitted_at",
        "parent_span",
    )

    def __init__(
        self,
        ticket: QueryTicket,
        analyze: bool,
        budget: "QueryBudget | None",
        deadline_ms: "float | None",
        submitted_at: float,
        parent_span: "Span | None",
    ) -> None:
        self.ticket = ticket
        self.analyze = analyze
        self.budget = budget
        self.deadline_ms = deadline_ms
        self.submitted_at = submitted_at
        self.parent_span = parent_span


class QueryService:
    """A bounded thread pool serving MDX queries over warehouse snapshots.

    Parameters
    ----------
    warehouse:
        The live warehouse; every submission pins ``warehouse.snapshot()``.
    workers:
        Worker threads (concurrent query executions).
    queue_depth:
        Maximum *waiting* submissions; beyond it, ``submit`` sheds with
        :class:`~repro.errors.ServiceOverloadedError` instead of blocking.
    default_deadline_ms:
        Deadline applied to submissions that bring neither their own
        ``deadline_ms`` nor a budget deadline; ``None`` = none.
    breaker:
        The circuit breaker; a default-tuned one is built when omitted.
    clock:
        Monotonic clock in seconds (injectable for tests).
    """

    def __init__(
        self,
        warehouse: "Warehouse",
        *,
        workers: int = 4,
        queue_depth: int = 16,
        default_deadline_ms: "float | None" = None,
        breaker: "CircuitBreaker | None" = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.warehouse = warehouse
        self.workers = workers
        self.queue_depth = queue_depth
        self.default_deadline_ms = default_deadline_ms
        self._clock = clock or time.monotonic
        self._metrics = warehouse.metrics
        self.breaker = breaker or CircuitBreaker()
        self.breaker._on_state_change = self._on_breaker_state
        self._metrics.gauge("circuit_state").set(int(self.breaker.state))
        self._queue: "queue.Queue[_Job | None]" = queue.Queue(
            maxsize=queue_depth
        )
        self._closed = False
        self._lock = make_lock("QueryService._lock", reentrant=False)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-query-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- metrics helpers ----------------------------------------------------------

    def _on_breaker_state(self, state: BreakerState) -> None:
        self._metrics.gauge("circuit_state").set(int(state))

    def _shed(self, reason: str, message: str) -> ServiceOverloadedError:
        self._metrics.counter("service_shed_total", reason=reason).inc()
        self._metrics.counter("service_queries_total", status="shed").inc()
        return ServiceOverloadedError(message, reason=reason)

    # -- client API ---------------------------------------------------------------

    def submit(
        self,
        text: str,
        *,
        analyze: bool = True,
        budget: "QueryBudget | None" = None,
        deadline_ms: "float | None" = None,
    ) -> QueryTicket:
        """Admit one query; returns immediately with a ticket.

        Raises :class:`~repro.errors.CircuitOpenError` while the breaker
        is open, :class:`~repro.errors.ServiceOverloadedError` when the
        admission queue is full, and
        :class:`~repro.errors.ServiceStoppedError` after :meth:`close` —
        all *before* any work is queued, so the caller can shed load
        upstream.  Never blocks.
        """
        if self._closed:
            raise ServiceStoppedError("query service is closed")
        if not self.breaker.allow():
            self._metrics.counter(
                "service_shed_total", reason="circuit-open"
            ).inc()
            self._metrics.counter(
                "service_queries_total", status="shed"
            ).inc()
            raise CircuitOpenError(
                "circuit breaker is open (repeated backend failures); "
                "retry after backoff"
            )
        if deadline_ms is None:
            deadline_ms = (
                budget.deadline_ms
                if budget is not None and budget.deadline_ms is not None
                else self.default_deadline_ms
            )
        snapshot = self.warehouse.snapshot()
        ticket = QueryTicket(text, snapshot)
        parent = TRACER.current() if TRACER.enabled else None
        job = _Job(ticket, analyze, budget, deadline_ms, self._clock(), parent)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise self._shed(
                "queue-full",
                f"admission queue is full ({self.queue_depth} waiting); "
                "query shed",
            ) from None
        self._metrics.gauge("service_queue_depth").set(self._queue.qsize())
        return ticket

    # -- worker side --------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # close() sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            except BaseException as exc:  # defensive: keep the worker alive
                if not job.ticket.done():
                    job.ticket._complete(None, exc)
            finally:
                self._queue.task_done()

    def _run_job(self, job: _Job) -> None:
        ticket = job.ticket
        wait_ms = (self._clock() - job.submitted_at) * 1000.0
        self._metrics.histogram("service_queue_wait_ms").observe(wait_ms)
        self._metrics.gauge("service_queue_depth").set(self._queue.qsize())
        if job.deadline_ms is not None and wait_ms >= job.deadline_ms:
            # The deadline died in the queue: shed, don't start work the
            # caller has already given up on.
            ticket._complete(
                None,
                self._shed(
                    "deadline-expired",
                    f"deadline of {job.deadline_ms}ms expired after "
                    f"{wait_ms:.1f}ms in the admission queue",
                ),
            )
            return
        budget = job.budget or QueryBudget()
        if job.deadline_ms is not None:
            budget = budget.narrowed(job.deadline_ms - wait_ms)
        try:
            with TRACER.child_scope(job.parent_span):
                result = ticket.snapshot.query(
                    ticket.text,
                    analyze=job.analyze,
                    budget=None if budget.unlimited else budget,
                )
        except BaseException as exc:
            self.breaker.record_failure(exc)
            self._metrics.counter(
                "service_queries_total", status="error"
            ).inc()
            ticket._complete(None, exc)
            return
        self.breaker.record_success()
        status = "partial" if result.degradations else "ok"
        self._metrics.counter("service_queries_total", status=status).inc()
        ticket._complete(result)

    # -- lifecycle ----------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: "float | None" = None) -> None:
        """Stop the service.

        ``drain=True`` lets queued work finish; ``drain=False`` fails
        every still-queued ticket with
        :class:`~repro.errors.ServiceStoppedError`.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None:
                    job.ticket._complete(
                        None,
                        ServiceStoppedError(
                            "service closed before this query ran"
                        ),
                    )
                self._queue.task_done()
        for _ in self._threads:
            # blocking put: sentinels queue behind any draining work
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryService({self.workers} workers, "
            f"queue {self._queue.qsize()}/{self.queue_depth}, "
            f"breaker {self.breaker.state.name})"
        )
