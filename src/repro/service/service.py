"""The concurrent query service: a bounded worker pool with admission
control, deadline propagation, and overload protection.

``submit()`` is the whole client API: it pins a snapshot of the
warehouse at the current cube version, enqueues the query, and returns a
:class:`QueryTicket` immediately.  Every robustness decision happens at
well-defined points:

* **Admission** — the circuit breaker is consulted first
  (:class:`~repro.errors.CircuitOpenError` fails fast while the store is
  sick), then the bounded queue: a full queue sheds the query with
  :class:`~repro.errors.ServiceOverloadedError` *at submit time*.
  Nothing in the submit path can block, so overload can never deadlock
  the caller.
* **Execution** — a worker dequeues the job, charges the queue wait
  against the query's deadline (``QueryBudget.narrowed``), and runs it
  against the snapshot pinned at submit.  A deadline that fully expired
  in the queue sheds instead of executing.  If the submitter was inside
  a traced span, the worker attaches to it via ``Tracer.child_scope`` so
  the evaluation is not an orphan trace.
* **Completion** — the outcome lands on the ticket (result or typed
  error), the breaker hears about success/failure, and the service
  counters (``service_queries_total{status}``, ``service_shed_total``,
  ``service_queue_wait_ms``, ``circuit_state``) are updated on the
  warehouse's metrics registry.

Results are exactly what ``Warehouse.query`` returns — including partial
(⊥-degraded) grids under budget breach, PR 2's graceful-degradation
contract, now reachable under concurrency.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    CircuitOpenError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ServiceTimeoutError,
)
from repro.lint.lockdep import make_lock
from repro.mdx.budget import QueryBudget
from repro.obs.trace import TRACER, Span
from repro.service.breaker import BreakerState, CircuitBreaker

if TYPE_CHECKING:
    from repro.mdx.budget import Degradation
    from repro.mdx.result import MdxResult
    from repro.service.shard import ShardClient
    from repro.service.snapshot import WarehouseSnapshot
    from repro.service.supervisor import SupervisorConfig
    from repro.warehouse import Warehouse

__all__ = ["QueryService", "QueryTicket", "ShardedQueryService"]


class QueryTicket:
    """A handle to one submitted query.

    ``result()`` blocks until the worker finishes (or ``timeout``
    elapses, raising :class:`~repro.errors.ServiceTimeoutError` — a
    :class:`TimeoutError` subclass, so ``concurrent.futures``-style
    callers keep working), then returns the
    :class:`~repro.mdx.result.MdxResult` or re-raises the query's error
    in the caller's thread.
    """

    def __init__(self, text: str, snapshot: "WarehouseSnapshot") -> None:
        self.text = text
        #: the immutable view this query is pinned to
        self.snapshot = snapshot
        #: the base-cube version of that view
        self.snapshot_version = snapshot.version
        self._done = threading.Event()
        self._result: "MdxResult | None" = None
        self._error: "BaseException | None" = None

    # -- completion (service side) ------------------------------------------------

    def _complete(
        self,
        result: "MdxResult | None",
        error: "BaseException | None" = None,
    ) -> None:
        self._result = result
        self._error = error
        self._done.set()

    # -- inspection (client side) --------------------------------------------------

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._done.wait(timeout)

    def exception(self, timeout: "float | None" = None) -> "BaseException | None":
        if not self._done.wait(timeout):
            raise ServiceTimeoutError("query is still running")
        return self._error

    def result(self, timeout: "float | None" = None) -> "MdxResult":
        if not self._done.wait(timeout):
            raise ServiceTimeoutError("query is still running")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._done.is_set():
            state = "error" if self._error is not None else "done"
        return f"QueryTicket({state}, version={self.snapshot_version})"


class _Job:
    """One queued query (internal)."""

    __slots__ = (
        "ticket",
        "analyze",
        "budget",
        "deadline_ms",
        "submitted_at",
        "parent_span",
    )

    def __init__(
        self,
        ticket: QueryTicket,
        analyze: bool,
        budget: "QueryBudget | None",
        deadline_ms: "float | None",
        submitted_at: float,
        parent_span: "Span | None",
    ) -> None:
        self.ticket = ticket
        self.analyze = analyze
        self.budget = budget
        self.deadline_ms = deadline_ms
        self.submitted_at = submitted_at
        self.parent_span = parent_span


class QueryService:
    """A bounded thread pool serving MDX queries over warehouse snapshots.

    Parameters
    ----------
    warehouse:
        The live warehouse; every submission pins ``warehouse.snapshot()``.
    workers:
        Worker threads (concurrent query executions).
    queue_depth:
        Maximum *waiting* submissions; beyond it, ``submit`` sheds with
        :class:`~repro.errors.ServiceOverloadedError` instead of blocking.
    default_deadline_ms:
        Deadline applied to submissions that bring neither their own
        ``deadline_ms`` nor a budget deadline; ``None`` = none.
    breaker:
        The circuit breaker; a default-tuned one is built when omitted.
    clock:
        Monotonic clock in seconds (injectable for tests).
    """

    def __init__(
        self,
        warehouse: "Warehouse",
        *,
        workers: int = 4,
        queue_depth: int = 16,
        default_deadline_ms: "float | None" = None,
        breaker: "CircuitBreaker | None" = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.warehouse = warehouse
        self.workers = workers
        self.queue_depth = queue_depth
        self.default_deadline_ms = default_deadline_ms
        self._clock = clock or time.monotonic
        self._metrics = warehouse.metrics
        self.breaker = breaker or CircuitBreaker()
        self.breaker._on_state_change = self._on_breaker_state
        self._metrics.gauge("circuit_state").set(int(self.breaker.state))
        self._queue: "queue.Queue[_Job | None]" = queue.Queue(
            maxsize=queue_depth
        )
        self._closed = False
        self._lock = make_lock("QueryService._lock", reentrant=False)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-query-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- metrics helpers ----------------------------------------------------------

    def _on_breaker_state(self, state: BreakerState) -> None:
        self._metrics.gauge("circuit_state").set(int(state))

    def _shed(self, reason: str, message: str) -> ServiceOverloadedError:
        self._metrics.counter("service_shed_total", reason=reason).inc()
        self._metrics.counter("service_queries_total", status="shed").inc()
        return ServiceOverloadedError(message, reason=reason)

    # -- client API ---------------------------------------------------------------

    def submit(
        self,
        text: str,
        *,
        analyze: bool = True,
        budget: "QueryBudget | None" = None,
        deadline_ms: "float | None" = None,
    ) -> QueryTicket:
        """Admit one query; returns immediately with a ticket.

        Raises :class:`~repro.errors.CircuitOpenError` while the breaker
        is open, :class:`~repro.errors.ServiceOverloadedError` when the
        admission queue is full, and
        :class:`~repro.errors.ServiceStoppedError` after :meth:`close` —
        all *before* any work is queued, so the caller can shed load
        upstream.  Never blocks.
        """
        if self._closed:
            raise ServiceStoppedError("query service is closed")
        if not self.breaker.allow():
            self._metrics.counter(
                "service_shed_total", reason="circuit-open"
            ).inc()
            self._metrics.counter(
                "service_queries_total", status="shed"
            ).inc()
            raise CircuitOpenError(
                "circuit breaker is open (repeated backend failures); "
                "retry after backoff"
            )
        if deadline_ms is None:
            deadline_ms = (
                budget.deadline_ms
                if budget is not None and budget.deadline_ms is not None
                else self.default_deadline_ms
            )
        snapshot = self.warehouse.snapshot()
        ticket = QueryTicket(text, snapshot)
        parent = TRACER.current() if TRACER.enabled else None
        job = _Job(ticket, analyze, budget, deadline_ms, self._clock(), parent)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise self._shed(
                "queue-full",
                f"admission queue is full ({self.queue_depth} waiting); "
                "query shed",
            ) from None
        self._metrics.gauge("service_queue_depth").set(self._queue.qsize())
        return ticket

    # -- worker side --------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None:  # close() sentinel
                    return
                self._run_job(job)
            except BaseException as exc:  # defensive: keep the worker alive
                if not job.ticket.done():
                    job.ticket._complete(None, exc)
                self._metrics.counter(
                    "service_worker_errors_total", kind=type(exc).__name__
                ).inc()
                if isinstance(exc, (SystemExit, KeyboardInterrupt)):
                    # Interpreter-exit exceptions must never be swallowed
                    # by the keep-alive: the ticket is completed (the
                    # caller sees the error), then the worker re-raises
                    # and dies with the interpreter.
                    raise
            finally:
                self._queue.task_done()

    def _run_job(self, job: _Job) -> None:
        ticket = job.ticket
        wait_ms = (self._clock() - job.submitted_at) * 1000.0
        self._metrics.histogram("service_queue_wait_ms").observe(wait_ms)
        self._metrics.gauge("service_queue_depth").set(self._queue.qsize())
        if job.deadline_ms is not None and wait_ms >= job.deadline_ms:
            # The deadline died in the queue: shed, don't start work the
            # caller has already given up on.
            ticket._complete(
                None,
                self._shed(
                    "deadline-expired",
                    f"deadline of {job.deadline_ms}ms expired after "
                    f"{wait_ms:.1f}ms in the admission queue",
                ),
            )
            return
        budget = job.budget or QueryBudget()
        if job.deadline_ms is not None:
            budget = budget.narrowed(job.deadline_ms - wait_ms)
        try:
            with TRACER.child_scope(job.parent_span):
                result = ticket.snapshot.query(
                    ticket.text,
                    analyze=job.analyze,
                    budget=None if budget.unlimited else budget,
                )
        except BaseException as exc:
            self.breaker.record_failure(exc)
            self._metrics.counter(
                "service_queries_total", status="error"
            ).inc()
            ticket._complete(None, exc)
            if isinstance(exc, (SystemExit, KeyboardInterrupt)):
                raise  # completed the ticket first; now let the exit out
            return
        self.breaker.record_success()
        status = "partial" if result.degradations else "ok"
        self._metrics.counter("service_queries_total", status=status).inc()
        ticket._complete(result)

    # -- lifecycle ----------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: "float | None" = None) -> None:
        """Stop the service.

        ``drain=True`` lets queued work finish; ``drain=False`` fails
        every still-queued ticket with
        :class:`~repro.errors.ServiceStoppedError`.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None:
                    job.ticket._complete(
                        None,
                        ServiceStoppedError(
                            "service closed before this query ran"
                        ),
                    )
                self._queue.task_done()
        for _ in self._threads:
            # blocking put: sentinels queue behind any draining work
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryService({self.workers} workers, "
            f"queue {self._queue.qsize()}/{self.queue_depth}, "
            f"breaker {self.breaker.state.name})"
        )


class ShardedQueryService:
    """Scatter-gather query execution over a pool of shard processes.

    The shard dimension (default: the workload's varying dimension) is
    partitioned by :func:`~repro.core.merge_graph.plan_axis_shards` into
    member sets whose instance slots co-reside; each shard process owns
    one set and evaluates any cell whose shard-dimension coordinate
    resolves to one of its members.  The coordinator:

    * resolves axes and the slicer on a cheap *seeded hollow* warehouse —
      the full schema, rules, and named sets over a cube holding one
      representative leaf per (varying dimension, member-with-data), so
      scenario application costs O(members) instead of O(cube) while
      producing the exact axis tuples of the full context;
    * classifies each result cell as **owned** (one shard evaluates it
      end to end), **spanning** (a pure sum-rollup whose scope crosses
      shards: every shard returns its scope slice as ``(global position,
      value)`` pairs, and the coordinator merges them back into global
      insertion order before the strict reduction — bit-identical to the
      single-process gather), or **local** (leaf reads, rule-bearing
      cells, stored aggregates, and scenario cells above any single
      member — evaluated on the coordinator's full warehouse);
    * guards each shard with its own :class:`CircuitBreaker`; a query
      needing an open shard fails fast with
      :class:`~repro.errors.CircuitOpenError`.

    Queries carrying a budget, or whose sets read cell values (FILTER /
    ORDER), fall back to full local evaluation — correctness first.

    **Failure semantics** (docs/serving.md): every scatter/gather runs
    under a per-RPC deadline derived from ``rpc_timeout_ms`` (narrowed
    by the caller's ``deadline_ms``); transient faults retry in place; a
    dead shard is retried against its supervisor-respawned successor;
    and when a shard stays unavailable the ``degrade`` policy decides —
    ``"fallback"`` (default) recomputes its cells on the coordinator's
    full warehouse (bit-identical), ``"partial"`` returns those cells as
    ⊥ with structured :class:`~repro.mdx.budget.Degradation` records,
    ``"fail"`` raises the typed error.  Because the coordinator holds
    the complete warehouse, fallback results are exactly what the
    healthy pool would have produced.
    """

    #: accepted values for the ``degrade`` policy
    DEGRADE_POLICIES = ("fail", "fallback", "partial")

    def __init__(
        self,
        workload: str = "running",
        *,
        n_shards: int = 2,
        dimension: "str | None" = None,
        chunk: int = 8,
        workload_params: "tuple[tuple[str, Any], ...]" = (),
        start_timeout: float = 60.0,
        degrade: str = "fallback",
        rpc_timeout_ms: float = 30_000.0,
        hedge_ms: "float | None" = 1_000.0,
        rpc_retries: int = 2,
        supervisor_config: "SupervisorConfig | None" = None,
    ) -> None:
        from repro.errors import ShardError
        from repro.service.shard import (
            ShardSpec,
            build_shard_plan,
            build_workload,
        )
        from repro.service.supervisor import ShardSupervisor, SupervisorConfig

        if n_shards < 1:
            raise ShardError("n_shards must be >= 1")
        if degrade not in self.DEGRADE_POLICIES:
            raise ShardError(
                f"unknown degrade policy {degrade!r}; expected one of "
                f"{', '.join(self.DEGRADE_POLICIES)}"
            )
        if rpc_timeout_ms <= 0:
            raise ShardError("rpc_timeout_ms must be > 0")
        if hedge_ms is not None and hedge_ms <= 0:
            raise ShardError("hedge_ms must be > 0 (or None to disable)")
        if rpc_retries < 0:
            raise ShardError("rpc_retries must be >= 0")
        self.degrade = degrade
        self.rpc_timeout_ms = float(rpc_timeout_ms)
        self.hedge_ms = None if hedge_ms is None else float(hedge_ms)
        self.rpc_retries = int(rpc_retries)
        self.workload = workload
        self.warehouse = build_workload(workload, tuple(workload_params))
        schema = self.warehouse.schema
        if dimension is None:
            varying = list(schema.varying)
            if not varying:
                raise ShardError(
                    f"workload {workload!r} has no varying dimension to shard on"
                )
            dimension = varying[0]
        self.dimension = dimension
        self.plan = build_shard_plan(self.warehouse, dimension, n_shards, chunk)
        self.n_shards = n_shards
        self._dim_index = schema.dim_index(dimension)
        self._metrics = self.warehouse.metrics
        self._metrics.gauge("serve_shards").set(n_shards)
        self._parsed: "dict[str, Any]" = {}
        self._lock = make_lock("ShardedQueryService._lock", reentrant=False)
        self._closed = False

        # Every leaf must be owned by exactly one shard, or spanning
        # merges would silently drop its contribution.
        member_shard = self.plan.member_shard
        for addr, _ in self.warehouse.cube.leaf_cells():
            member = addr[self._dim_index].rsplit("/", 1)[-1]
            if member not in member_shard:
                raise ShardError(
                    f"leaf member {member!r} on {dimension!r} is not covered "
                    "by the shard plan"
                )

        self._hollow = self._build_hollow()
        specs = [
            ShardSpec(
                workload=workload,
                dimension=dimension,
                owned_members=tuple(owned),
                shard_index=index,
                n_shards=n_shards,
                workload_params=tuple(workload_params),
            )
            for index, owned in enumerate(self.plan.shards)
        ]
        if supervisor_config is None:
            supervisor_config = SupervisorConfig(
                start_timeout_s=start_timeout,
                rpc_timeout_s=max(self.rpc_timeout_ms / 1000.0, 1.0),
            )
        self.supervisor = ShardSupervisor(
            specs, config=supervisor_config, metrics=self._metrics
        )
        self.breakers = [CircuitBreaker() for _ in range(n_shards)]
        for index, breaker in enumerate(self.breakers):
            breaker._on_state_change = self._breaker_callback(index)
            self._metrics.gauge(
                "serve_breaker_state", shard=str(index)
            ).set(int(breaker.state))
        self.supervisor.attach_breakers(self.breakers)

        # Startup invariant: the shards' sub-cubes partition the full cube.
        total = 0
        for client in self.supervisor.clients:
            total += client.request({"op": "ping"})["leaves"]
        if total != self.warehouse.cube.n_leaf_cells:
            self.close()
            raise ShardError(
                f"shards hold {total} leaves, warehouse has "
                f"{self.warehouse.cube.n_leaf_cells}: the plan is not a "
                "partition"
            )

    @property
    def clients(self) -> "list[ShardClient]":
        """The current client per shard (supervisor-owned; a respawn
        swaps the list entry for the replacement process's client)."""
        return self.supervisor.clients

    def _breaker_callback(self, index: int):
        gauge = self._metrics.gauge("serve_breaker_state", shard=str(index))
        return lambda state: gauge.set(int(state))

    def _build_hollow(self):
        """The axis-resolution warehouse: full schema/rules/named sets
        over a cube seeded with one representative leaf per (varying
        dimension, member-with-data).  Scenario transforms derive their
        output validity from ``instances_of`` per member-with-data, so
        one leaf per member reproduces the full context's surviving set
        — and with it the exact axis tuples — at O(members) cost."""
        from repro.olap.cube import Cube
        from repro.warehouse import Warehouse

        schema = self.warehouse.schema
        hollow_cube = Cube(schema, self.warehouse.cube.rules)
        varying_dims = [
            (name, schema.dim_index(name)) for name in schema.varying
        ]
        seeded: set[tuple[str, str]] = set()
        for addr, _ in self.warehouse.cube.leaf_cells():
            fresh = False
            for name, dim_index in varying_dims:
                key = (name, addr[dim_index].rsplit("/", 1)[-1])
                if key not in seeded:
                    seeded.add(key)
                    fresh = True
            if fresh:
                hollow_cube.set_value(addr, 0.0)
        hollow = Warehouse(
            schema,
            hollow_cube,
            name=self.warehouse.name,
            aliases=self.warehouse.aliases,
        )
        for named_set in self.warehouse.named_sets():
            hollow.define_named_set(named_set.name, named_set.members)
        return hollow

    # -- query path ---------------------------------------------------------------

    def _parse(self, text: str):
        from repro.mdx.parser import parse_query

        query = self._parsed.get(text)
        if query is None:
            query = parse_query(text)
            if len(self._parsed) > 1024:
                self._parsed.clear()
            self._parsed[text] = query
        return query

    @staticmethod
    def _reads_cell_values(query: Any) -> bool:
        """Whether any set expression consults cell values (FILTER /
        ORDER): those must see the full cube, not the hollow seed."""
        from repro.mdx.ast_nodes import FilterExpr, OrderExpr

        def walk(node: Any) -> bool:
            if isinstance(node, (FilterExpr, OrderExpr)):
                return True
            if isinstance(node, (tuple, list)):
                return any(walk(item) for item in node)
            if hasattr(node, "__dict__"):
                return any(walk(value) for value in vars(node).values())
            return False

        return any(walk(axis.expr) for axis in query.axes) or (
            query.slicer is not None and walk(query.slicer)
        )

    def execute(
        self,
        text: str,
        *,
        analyze: bool = True,
        budget: "QueryBudget | None" = None,
        degrade: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> "MdxResult":
        """Evaluate one query across the shard pool.

        When every involved shard answers, returns exactly what
        single-process ``Warehouse.query`` returns — same axis tuples,
        bit-identical cells, same NON EMPTY pruning.  ``degrade``
        overrides the service-level policy for this query (``"fail"`` |
        ``"fallback"`` | ``"partial"``); ``deadline_ms`` narrows the
        per-RPC deadline below the service's ``rpc_timeout_ms``.  A
        ``"partial"`` answer carries ⊥ cells plus ``degradations``
        records and skips NON EMPTY pruning (unknown values must not
        silently drop rows).
        """
        from repro.errors import ShardError

        if degrade is not None and degrade not in self.DEGRADE_POLICIES:
            raise ShardError(
                f"unknown degrade policy {degrade!r}; expected one of "
                f"{', '.join(self.DEGRADE_POLICIES)}"
            )
        started = self._clock()
        try:
            result = self._execute(
                text,
                analyze=analyze,
                budget=budget,
                degrade=degrade or self.degrade,
                deadline_ms=deadline_ms,
            )
        except BaseException:
            self._metrics.counter(
                "serve_queries_total", status="error"
            ).inc()
            raise
        finally:
            self._metrics.histogram("serve_query_ms").observe(
                (self._clock() - started) * 1000.0
            )
        status = "partial" if result.degradations else "ok"
        self._metrics.counter("serve_queries_total", status=status).inc()
        return result

    _clock = staticmethod(time.monotonic)

    def _execute(
        self,
        text: str,
        *,
        analyze: bool,
        budget: "QueryBudget | None",
        degrade: str,
        deadline_ms: "float | None",
    ) -> "MdxResult":
        from repro.errors import MdxEvaluationError
        from repro.mdx.evaluator import _Context, _axis_tuples
        from repro.mdx.result import AxisTuple, MdxResult

        if self._closed:
            raise ServiceStoppedError("sharded query service is closed")
        query = self._parse(text)
        if budget is not None or self._reads_cell_values(query):
            self._metrics.counter(
                "serve_local_fallback_total",
                reason="budget" if budget is not None else "value-dependent-set",
            ).inc()
            return self.warehouse.query(text, analyze=analyze, budget=budget)
        if analyze:
            from repro.analysis.query_analyzer import analyze_query
            from repro.errors import MdxAnalysisError

            report = analyze_query(self.warehouse, query)
            if report.has_errors:
                raise MdxAnalysisError(report)
        if not query.axes:
            raise MdxEvaluationError("a query needs at least one axis")
        if len(query.axes) > 2:
            raise MdxEvaluationError(
                "only COLUMNS and ROWS axes are supported in this implementation"
            )
        seen_axes: set[str] = set()
        for axis in query.axes:
            if axis.axis in seen_axes:
                raise MdxEvaluationError(
                    f"axis {axis.axis!r} is bound more than once"
                )
            seen_axes.add(axis.axis)
        self.warehouse.check_cube_name(query.cube)

        schema = self.warehouse.schema
        context = _Context(self._hollow, query)
        by_axis = {axis.axis: axis for axis in query.axes}
        if "columns" not in by_axis:
            raise MdxEvaluationError("a query must place a set ON COLUMNS")
        columns = _axis_tuples(by_axis["columns"], context)
        rows = (
            _axis_tuples(by_axis["rows"], context)
            if "rows" in by_axis
            else [AxisTuple((), ())]
        )
        slicer: dict[str, str] = {}
        if query.slicer is not None:
            from repro.mdx.evaluator import _as_set

            for binding_tuple in _as_set(query.slicer, context):
                for dim, coord, _ in binding_tuple:
                    slicer[dim] = coord

        has_scenario = bool(context.scenarios)
        cells, stats, degradations = self._evaluate_cells(
            query,
            text,
            schema,
            rows,
            columns,
            slicer,
            has_scenario,
            degrade,
            deadline_ms,
        )
        stats["sharded"] = self.n_shards

        from repro.olap.missing import is_missing

        # A degraded grid's ⊥ cells mean "unknown", not "empty": NON
        # EMPTY pruning over unknowns would silently drop rows the
        # healthy pool keeps, so it is skipped for partial answers.
        if not degradations:
            if "rows" in by_axis and by_axis["rows"].non_empty:
                keep = [
                    i
                    for i, row_cells in enumerate(cells)
                    if any(not is_missing(v) for v in row_cells)
                ]
                rows = [rows[i] for i in keep]
                cells = [cells[i] for i in keep]
            if by_axis["columns"].non_empty:
                keep = [
                    j
                    for j in range(len(columns))
                    if any(not is_missing(row_cells[j]) for row_cells in cells)
                ]
                columns = [columns[j] for j in keep]
                cells = [[row_cells[j] for j in keep] for row_cells in cells]
        return MdxResult(
            columns=columns,
            rows=rows,
            cells=cells,
            degradations=degradations,
            stats=stats,
        )

    def _evaluate_cells(
        self,
        query: Any,
        text: str,
        schema: Any,
        rows: "list[Any]",
        columns: "list[Any]",
        slicer: "dict[str, str]",
        has_scenario: bool,
        degrade: str,
        deadline_ms: "float | None",
    ) -> "tuple[list[list[Any]], dict[str, int], list[Degradation]]":
        """Classify, scatter, gather (with retry/hedge/recovery), and
        merge the result grid."""
        import numpy as np

        from repro.errors import ShardError, TransientFaultError
        from repro.mdx.budget import Degradation
        from repro.olap.aggregation import reduce_array
        from repro.olap.missing import MISSING
        from repro.perf import config as perf_config
        from repro.service.shard import _Pending, _decode_value

        cube = self.warehouse.cube
        rules = cube.rules
        stored_derived = cube._stored_derived
        dim_index = self._dim_index
        plan = self.plan
        defaults = {d.name: d.root.name for d in schema.dimensions}
        base = dict(defaults)
        base.update(slicer)

        owned: "dict[int, list[tuple[int, int, tuple[str, ...]]]]" = {}
        spanning: "list[tuple[int, int, tuple[str, ...]]]" = []
        local: "list[tuple[int, int, tuple[str, ...]]]" = []
        grid: "list[list[Any]]" = [
            [MISSING] * len(columns) for _ in rows
        ]
        for r, row in enumerate(rows):
            for c, column in enumerate(columns):
                coords = dict(base)
                coords.update(dict(row.coordinates))
                coords.update(dict(column.coordinates))
                addr = schema.address(**coords)
                shard = plan.shard_of_coordinate(addr[dim_index])
                ruled = rules is not None and rules.has_rule_for(cube, addr)
                if ruled:
                    local.append((r, c, addr))
                elif has_scenario:
                    if shard is not None:
                        owned.setdefault(shard, []).append((r, c, addr))
                    else:
                        local.append((r, c, addr))
                elif schema.is_leaf_address(addr) or addr in stored_derived:
                    local.append((r, c, addr))
                elif shard is not None:
                    owned.setdefault(shard, []).append((r, c, addr))
                else:
                    spanning.append((r, c, addr))

        stats = {
            "cells_evaluated": len(rows) * len(columns),
            "cells_skipped": 0,
            "owned_cells": sum(len(v) for v in owned.values()),
            "spanning_cells": len(spanning),
            "local_cells": len(local),
            "fallback_cells": 0,
        }

        # -- RPC deadline / recovery bookkeeping --------------------------------
        # Every scatter/gather on this query shares one wall-clock
        # deadline: the service's rpc_timeout_ms narrowed by the
        # caller's per-query deadline_ms (queue-style narrowing, same
        # contract as QueryService admission deadlines).
        rpc_budget = QueryBudget(deadline_ms=self.rpc_timeout_ms).narrowed(
            deadline_ms
        )
        assert rpc_budget.deadline_ms is not None
        deadline = self._clock() + rpc_budget.deadline_ms / 1000.0
        hedge_s = None if self.hedge_ms is None else self.hedge_ms / 1000.0
        hedging = degrade == "fallback" and hedge_s is not None

        fallback_cells: "list[tuple[int, int, tuple[str, ...]]]" = []
        lost: "list[tuple[str, list[tuple[int, int, tuple[str, ...]]]]]" = []
        spanning_active = bool(spanning)

        def recover_owned(shard: int, detail: str) -> None:
            """A shard's owned cells survive its death: recomputed
            locally (fallback) or returned ⊥ (partial)."""
            cells_for_shard = owned.pop(shard, None)
            if not cells_for_shard:
                return
            if degrade == "fallback":
                fallback_cells.extend(cells_for_shard)
                self._metrics.counter(
                    "serve_fallback_cells_total", shard=str(shard)
                ).inc(len(cells_for_shard))
            else:
                lost.append((f"shard {shard}: {detail}", list(cells_for_shard)))

        def recover_spanning(shard: int, detail: str) -> None:
            """A spanning merge missing any contribution is abandoned
            whole — a partial sum is not a value, it is a wrong value."""
            nonlocal spanning_active
            if not spanning_active:
                return
            spanning_active = False
            if degrade == "fallback":
                fallback_cells.extend(spanning)
                self._metrics.counter(
                    "serve_fallback_cells_total", shard=str(shard)
                ).inc(len(spanning))
            else:
                lost.append(
                    (
                        f"shard {shard}: {detail} (spanning merge incomplete)",
                        list(spanning),
                    )
                )

        # -- admission ----------------------------------------------------------
        involved = set(owned)
        if spanning_active:
            involved.update(range(self.n_shards))
        for shard in sorted(involved):
            admission_error: "BaseException | None" = None
            # Shed only while the breaker is fully open.  Half-open probe
            # slots belong to the supervisor's ping loop (never the query
            # path): a query admitted here that ends up with no RPC to
            # this shard — its cells recovered because *another* shard
            # died — would leak the slot and wedge the breaker half-open
            # forever.  Half-open queries flow freely; their recorded
            # outcomes close or re-open the breaker just the same.
            if self.breakers[shard].state is BreakerState.OPEN:
                self._metrics.counter(
                    "serve_shed_total", reason="shard-circuit-open"
                ).inc()
                admission_error = CircuitOpenError(
                    f"circuit breaker for shard {shard} is open; retry "
                    "after backoff"
                )
            else:
                try:
                    self.supervisor.client(shard)
                except ShardError as down:
                    self.breakers[shard].record_failure(down)
                    admission_error = down
            if admission_error is None:
                continue
            if degrade == "fail":
                raise admission_error
            recover_owned(shard, str(admission_error))
            recover_spanning(shard, str(admission_error))

        # -- scatter ------------------------------------------------------------
        pendings: "list[tuple[int, str, dict[str, Any], _Pending, Any]]" = []

        def scatter(shard: int, kind: str, payload: "dict[str, Any]") -> None:
            """Submit one RPC; transient faults retry in place, a dead
            shard waits (bounded) for its respawn, and a shard that
            stays dead is recovered per the degrade policy."""
            self._metrics.counter(
                "serve_shard_requests_total", shard=str(shard), kind=kind
            ).inc()
            transient = 0
            attempts = 0
            while True:
                try:
                    client = self.supervisor.client(shard)
                    pendings.append(
                        (shard, kind, payload, client.submit(payload), client)
                    )
                    return
                except TransientFaultError:
                    transient += 1
                    if transient > self.rpc_retries:
                        raise
                    self._metrics.counter(
                        "serve_shard_retries_total",
                        shard=str(shard),
                        kind="transient",
                    ).inc()
                except ShardError as exc:
                    self.breakers[shard].record_failure(exc)
                    self.supervisor.notify_failure(shard, exc)
                    attempts += 1
                    remaining = deadline - self._clock()
                    if (
                        attempts <= self.rpc_retries
                        and remaining > 0
                        and self.supervisor.await_live(shard, remaining)
                        is not None
                    ):
                        self._metrics.counter(
                            "serve_shard_retries_total",
                            shard=str(shard),
                            kind="respawn",
                        ).inc()
                        continue
                    if degrade == "fail":
                        raise
                    detail = f"scatter failed: {exc}"
                    if kind == "cells":
                        recover_owned(shard, detail)
                    else:
                        recover_spanning(shard, detail)
                    return

        for shard, assigned in sorted(owned.items()):
            scatter(
                shard,
                "cells",
                {
                    "op": "cells",
                    "text": text,
                    "addresses": [addr for _, _, addr in assigned],
                },
            )
        if spanning_active:
            spanning_payload = {
                "op": "partial",
                "addresses": [addr for _, _, addr in spanning],
            }
            for shard in range(self.n_shards):
                if not spanning_active:
                    break
                scatter(shard, "partial", dict(spanning_payload))

        # -- gather -------------------------------------------------------------
        def gather_one(
            shard: int,
            kind: str,
            payload: "dict[str, Any]",
            pending: _Pending,
            client: Any,
        ) -> "dict[str, Any]":
            """Gather one RPC under the shared deadline.

            Transient faults re-gather the same pending; a dead shard is
            retried against the respawned client (re-submit); an
            alive-but-slow shard past the hedge threshold raises so the
            caller falls back locally.  Raises ShardError when the shard
            stays unanswerable within the deadline.
            """
            transient = 0
            attempts = 0
            while True:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise ShardError(
                        f"shard {shard} missed the "
                        f"{rpc_budget.deadline_ms:.0f}ms RPC deadline",
                        shard=shard,
                    )
                wait = remaining
                if hedging:
                    assert hedge_s is not None
                    wait = min(wait, hedge_s)
                try:
                    return client.gather(pending, timeout=wait)
                except TransientFaultError:
                    transient += 1
                    if transient > self.rpc_retries:
                        raise
                    self._metrics.counter(
                        "serve_shard_retries_total",
                        shard=str(shard),
                        kind="transient",
                    ).inc()
                    if pending.event.is_set():
                        # Remote-raised transient: that RPC is consumed,
                        # so the retry must re-submit.  (A local
                        # serve.gather fault leaves the pending intact
                        # and simply re-gathers.)
                        try:
                            client = self.supervisor.client(shard)
                            pending = client.submit(payload)
                        except (ShardError, TransientFaultError):
                            continue
                except ShardError as exc:
                    self.breakers[shard].record_failure(exc)
                    if not pending.event.is_set() and not client.down():
                        # The worker is alive, the answer is late: hedge
                        # to the coordinator's bit-identical local path.
                        if hedging:
                            self._metrics.counter(
                                "serve_hedge_total", shard=str(shard)
                            ).inc()
                        raise
                    self.supervisor.notify_failure(shard, exc)
                    attempts += 1
                    remaining = deadline - self._clock()
                    if attempts > self.rpc_retries or remaining <= 0:
                        raise
                    fresh = self.supervisor.await_live(shard, remaining)
                    if fresh is None:
                        raise
                    self._metrics.counter(
                        "serve_shard_retries_total",
                        shard=str(shard),
                        kind="respawn",
                    ).inc()
                    try:
                        pending = fresh.submit(payload)
                        client = fresh
                    except (ShardError, TransientFaultError):
                        continue

        responses: "dict[tuple[int, str], dict[str, Any]]" = {}
        first_error: "BaseException | None" = None
        for shard, kind, payload, pending, client in pendings:
            try:
                response = gather_one(shard, kind, payload, pending, client)
            except ShardError as exc:
                if degrade == "fail":
                    if first_error is None:
                        first_error = exc
                    continue
                detail = f"gather failed: {exc}"
                if kind == "cells":
                    recover_owned(shard, detail)
                else:
                    recover_spanning(shard, detail)
            except BaseException as exc:
                self.breakers[shard].record_failure(exc)
                if first_error is None:
                    first_error = exc
            else:
                self.breakers[shard].record_success()
                responses[(shard, kind)] = response
        if first_error is not None:
            raise first_error

        # -- merge --------------------------------------------------------------
        for shard, assigned in sorted(owned.items()):
            values = responses[(shard, "cells")]["values"]
            for (r, c, _), value in zip(assigned, values):
                grid[r][c] = _decode_value(value)
        if spanning_active:
            mode = perf_config.reduction_mode()
            shard_partials = [
                responses[(shard, "partial")]["partials"]
                for shard in range(self.n_shards)
            ]
            for cell_index, (r, c, _) in enumerate(spanning):
                positions: "list[int]" = []
                values: "list[float]" = []
                for partials in shard_partials:
                    shard_positions, shard_values = partials[cell_index]
                    positions.extend(shard_positions)
                    values.extend(shard_values)
                if not positions:
                    grid[r][c] = MISSING
                    continue
                # Global insertion order restores the exact sequence the
                # single-process strict reduction folds over.
                order = np.argsort(
                    np.asarray(positions, dtype=np.int64), kind="stable"
                )
                merged = np.asarray(values, dtype=np.float64)[order]
                grid[r][c] = reduce_array("sum", merged, mode)

        # -- degradation records (partial policy) -------------------------------
        degradations: "list[Degradation]" = []
        if lost:
            skipped = sum(len(cells_lost) for _, cells_lost in lost)
            stats["cells_skipped"] = skipped
            self._metrics.counter("serve_degraded_cells_total").inc(skipped)
            total_cells = len(rows) * len(columns)
            for detail, cells_lost in lost:
                degradations.append(
                    Degradation(
                        reason="shard-down",
                        detail=detail,
                        cells_evaluated=total_cells - skipped,
                        cells_skipped=len(cells_lost),
                    )
                )

        # -- local residue ------------------------------------------------------
        stats["fallback_cells"] = len(fallback_cells)
        local_all = local + fallback_cells
        if local_all:
            if has_scenario:
                from repro.mdx.evaluator import _Context

                # Full context, built once per call; the warehouse's
                # scenario cache amortises the apply across queries with
                # the same fingerprints.
                view = _Context(self.warehouse, query).view
            else:
                view = cube
            for r, c, addr in local_all:
                grid[r][c] = view.effective_value(addr)
        return grid, stats, degradations

    # -- introspection / lifecycle ------------------------------------------------

    def explain(self, text: str) -> str:
        return self.warehouse.explain(text)

    def analyze(self, text: str):
        return self.warehouse.analyze(text)

    def health(self) -> "dict[str, Any]":
        """Machine-readable health: per-shard supervision state, breaker
        state, and the liveness/readiness split.

        ``live`` — the coordinator itself is up (it can always answer,
        degraded if necessary).  ``ready`` — every shard is live and
        every breaker closed, i.e. the pool serves bit-identical answers
        without fallback.  A supervisor mid-respawn leaves the service
        live but not ready.
        """
        supervision = self.supervisor.status()
        shards = []
        for state in supervision:
            index = state["shard"]
            shards.append(
                {
                    "shard": index,
                    "alive": state["alive"],
                    "state": state["state"],
                    "restarts": state["restarts"],
                    "next_attempt_in_s": state["next_attempt_in_s"],
                    "last_error": state["last_error"],
                    "breaker": self.breakers[index].state.name.lower(),
                    "members": len(self.plan.shards[index]),
                }
            )
        live = not self._closed
        ready = (
            live
            and all(s["alive"] for s in shards)
            and all(
                breaker.state is BreakerState.CLOSED
                for breaker in self.breakers
            )
        )
        if not live:
            status = "closed"
        elif ready:
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "live": live,
            "ready": ready,
            "degrade": self.degrade,
            "workload": self.workload,
            "dimension": self.dimension,
            "restarts_total": sum(s["restarts"] for s in shards),
            "retry_after_s": self.supervisor.retry_after_s(),
            "shards": shards,
        }

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.supervisor.close(timeout)

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedQueryService({self.workload!r}, {self.n_shards} shards "
            f"on {self.dimension!r})"
        )
