"""Immutable warehouse read views pinned to a cube version.

``Warehouse.snapshot()`` returns a :class:`WarehouseSnapshot`: a
queryable facade over a **frozen** copy of the base cube, pinned to the
``Cube.version`` current at snapshot time.  The copy is taken under the
cube's write lock, so it commutes with every ``set_value`` — a snapshot
can never observe half of a mutation (the MVCC read-view half of the
standard snapshot-isolation pattern; writers keep writing to the live
cube and never block readers).

Cost model: the copy is O(leaf cells) *pointer* copies (the address
tuples and floats are shared), not a data copy, and the warehouse caches
the snapshot per version — in the read-mostly what-if workload,
thousands of queries between two mutations share one view, one rollup
index, and one scenario-cache generation.  The chunked storage layer has
the finer-grained equivalent: ``ChunkStore.fork()`` shares chunk arrays
copy-on-write.

A snapshot deliberately *is a* :class:`~repro.warehouse.Warehouse`: the
evaluator, analyzer, EXPLAIN, and profile machinery all run against it
unchanged, while its observability surfaces (metrics, slow-query log,
scenario cache) are shared with the origin so service traffic lands in
one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.warehouse import Warehouse

if TYPE_CHECKING:
    from repro.olap.cube import Cube

__all__ = ["WarehouseSnapshot"]


class WarehouseSnapshot(Warehouse):
    """A read-only warehouse view pinned to one base-cube version.

    Built by ``Warehouse.snapshot()`` — do not construct directly: the
    warehouse caches one snapshot per version so concurrent queries at
    the same version share the frozen cube (and its lazily built rollup
    index) instead of copying it once each.
    """

    def __init__(self, origin: Warehouse, cube: "Cube") -> None:
        if not cube.frozen:
            raise ValueError("snapshot cube must be frozen")
        super().__init__(
            origin.schema, cube, name=origin.name, aliases=origin.aliases
        )
        #: the warehouse this view was pinned from
        self.origin = origin
        #: the base-cube mutation version this view is pinned to
        self.version = cube.version
        # Named sets are copied: later definitions on the origin must not
        # leak into a pinned view.
        self._named_sets = dict(origin._named_sets)
        # Share the origin's hot structures.  The scenario cache is
        # version-keyed (entries from other versions read as misses), and
        # metrics/slow-log aggregation belongs to the live warehouse —
        # a service query must not vanish into a per-snapshot registry.
        self.scenario_cache = origin.scenario_cache
        self.metrics = origin.metrics
        self.slow_log = origin.slow_log

    def snapshot(self) -> "WarehouseSnapshot":
        """A snapshot of a snapshot is itself (already immutable)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WarehouseSnapshot({self.name!r}, version={self.version}, "
            f"{self.cube.n_leaf_cells} leaf cells)"
        )
