"""HTTP front end for the sharded serving tier (``repro serve --http``).

A stdlib-only REST surface over :class:`~repro.service.ShardedQueryService`
— :class:`http.server.ThreadingHTTPServer`, one thread per connection, no
third-party dependencies:

* ``POST /v1/query``   — ``{"query": "...", "analyze": true, "degrade":
  "fallback", "deadline_ms": 5000}`` → the grid as JSON (axis tuples,
  cells with ``null`` for ⊥, stats); a degraded answer carries
  ``"partial": true`` plus structured ``degradations`` records;
* ``POST /v1/explain`` — the evaluation plan as text;
* ``GET  /metrics``    — Prometheus text exposition of the coordinator
  warehouse's registry (``serve_*``, ``mdx_*``, cache and breaker
  series);
* ``GET  /healthz``    — **liveness**: 200 while the coordinator can
  answer at all (even degraded, with supervisor respawns in flight);
  503 only once the service is closed.  The body carries per-shard
  supervision state and restart counts.
* ``GET  /readyz``     — **readiness**: 200 only when every shard is
  live and every breaker closed (the pool answers without fallback);
  503 with a ``Retry-After`` hint otherwise.

Typed engine errors map onto status codes the way a gateway expects:
parse/analysis/evaluation errors are the client's fault (400), admission
rejections are backpressure (429 for tenant quota and overload, 503 with
``Retry-After`` for an open circuit breaker or a down shard under the
``fail`` degrade policy), everything infrastructural is a 500 with the
error type in the body.  Per-tenant admission quotas
(:class:`TenantQuotas`) bound concurrent in-flight queries per
``X-Tenant`` header before any engine work happens.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AnalysisError,
    CircuitOpenError,
    MdxError,
    QueryError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ShardDownError,
)
from repro.lint.lockdep import make_lock
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.olap.missing import is_missing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import ShardedQueryService

__all__ = ["TenantQuotas", "make_server", "serve_http"]

DEFAULT_TENANT = "default"


class TenantQuotas:
    """Per-tenant admission quotas: at most ``max_inflight`` concurrent
    queries per tenant (overrides per tenant via ``limits``).

    Admission happens before any engine work; a rejected request costs
    one dict probe.  A limit of zero blocks the tenant outright.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        limits: "dict[str, int] | None" = None,
    ) -> None:
        if max_inflight < 0:
            raise ServiceError("max_inflight must be >= 0")
        self.max_inflight = max_inflight
        self.limits = dict(limits or {})
        self._lock = make_lock("TenantQuotas._lock", reentrant=False)
        self._inflight: dict[str, int] = {}

    def limit_for(self, tenant: str) -> int:
        return self.limits.get(tenant, self.max_inflight)

    def acquire(self, tenant: str) -> bool:
        """Reserve one in-flight slot; False = over quota (caller sheds)."""
        limit = self.limit_for(tenant)
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if current >= limit:
                return False
            self._inflight[tenant] = current + 1
            return True

    def release(self, tenant: str) -> None:
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if current <= 1:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = current - 1

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)


def _json_cells(cells: "list[list[Any]]") -> "list[list[float | None]]":
    return [
        [None if is_missing(value) else float(value) for value in row]
        for row in cells
    ]


def _json_axis(tuples: "list[Any]") -> "list[dict[str, Any]]":
    return [
        {
            "coordinates": [list(pair) for pair in t.coordinates],
            "labels": list(t.labels),
        }
        for t in tuples
    ]


def _status_for(error: BaseException) -> int:
    if isinstance(error, ServiceOverloadedError):
        return 429
    if isinstance(error, (CircuitOpenError, ShardDownError)):
        return 503
    if isinstance(error, (MdxError, AnalysisError, QueryError)):
        return 400
    return 500


def _retry_after_s(error: BaseException, server: "ReproHTTPServer") -> "float | None":
    """The ``Retry-After`` hint for a 503: the shard's own respawn
    estimate when the error carries one, else the supervisor's."""
    if isinstance(error, ShardDownError):
        return error.retry_after_s
    if isinstance(error, CircuitOpenError):
        return server.service.supervisor.retry_after_s()
    return None


class _Handler(BaseHTTPRequestHandler):
    """One request; the server instance carries the shared state."""

    server: "ReproHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - manual serving only
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        retry_after_s: "float | None" = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            # Retry-After is integer seconds; round up so "0.3s" does
            # not tell the client to hammer immediately.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: "dict[str, Any]",
        retry_after_s: "float | None" = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(
            status,
            body,
            "application/json; charset=utf-8",
            retry_after_s=retry_after_s,
        )

    def _send_error_json(self, error: BaseException) -> None:
        status = _status_for(error)
        self.server.metrics.counter(
            "serve_http_requests_total",
            endpoint=self.path.split("?")[0],
            status=str(status),
        ).inc()
        retry_after = (
            _retry_after_s(error, self.server) if status == 503 else None
        )
        payload: "dict[str, Any]" = {
            "error": type(error).__name__,
            "message": str(error),
        }
        if retry_after is not None:
            payload["retry_after_s"] = retry_after
        self._send_json(status, payload, retry_after_s=retry_after)

    def _count(self, endpoint: str, status: int) -> None:
        self.server.metrics.counter(
            "serve_http_requests_total", endpoint=endpoint, status=str(status)
        ).inc()

    def _read_body(self) -> "dict[str, Any]":
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise QueryError("request body must be a JSON object")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise QueryError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise QueryError("request body must be a JSON object")
        return payload

    def _tenant(self, payload: "dict[str, Any] | None" = None) -> str:
        header = self.headers.get("X-Tenant")
        if header:
            return header
        if payload is not None and isinstance(payload.get("tenant"), str):
            return payload["tenant"]
        return DEFAULT_TENANT

    # -- endpoints ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?")[0]
        if path == "/metrics":
            body = self.server.metrics.to_prometheus().encode("utf-8")
            self._count(path, 200)
            self._send(200, body, PROMETHEUS_CONTENT_TYPE)
            return
        if path == "/healthz":
            # Liveness: the coordinator answers (degraded included);
            # only a closed service is dead.
            health = self.server.service.health()
            status = 200 if health["live"] else 503
            self._count(path, status)
            self._send_json(status, health)
            return
        if path == "/readyz":
            # Readiness: every shard live, every breaker closed.
            health = self.server.service.health()
            status = 200 if health["ready"] else 503
            self._count(path, status)
            self._send_json(
                status,
                health,
                retry_after_s=(
                    health["retry_after_s"] if status == 503 else None
                ),
            )
            return
        self._count(path, 404)
        self._send_json(404, {"error": "NotFound", "message": path})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?")[0]
        if path not in ("/v1/query", "/v1/explain"):
            self._count(path, 404)
            self._send_json(404, {"error": "NotFound", "message": path})
            return
        try:
            payload = self._read_body()
            text = payload.get("query")
            if not isinstance(text, str) or not text.strip():
                raise QueryError('request needs a non-empty "query" string')
            tenant = self._tenant(payload)
            if not self.server.quotas.acquire(tenant):
                self.server.metrics.counter(
                    "serve_quota_rejections_total", tenant=tenant
                ).inc()
                raise ServiceOverloadedError(
                    f"tenant {tenant!r} is over its in-flight quota "
                    f"({self.server.quotas.limit_for(tenant)})",
                    reason="tenant-quota",
                )
            degrade = payload.get("degrade")
            if degrade is not None and not isinstance(degrade, str):
                raise QueryError('"degrade" must be a string policy name')
            deadline_ms = payload.get("deadline_ms")
            if deadline_ms is not None and not isinstance(
                deadline_ms, (int, float)
            ):
                raise QueryError('"deadline_ms" must be a number')
            try:
                if path == "/v1/explain":
                    plan = self.server.service.explain(text)
                    self._count(path, 200)
                    self._send_json(200, {"explain": plan})
                    return
                result = self.server.service.execute(
                    text,
                    analyze=bool(payload.get("analyze", True)),
                    degrade=degrade,
                    deadline_ms=(
                        float(deadline_ms) if deadline_ms is not None else None
                    ),
                )
            finally:
                self.server.quotas.release(tenant)
        except ReproError as exc:
            self._send_error_json(exc)
            return
        self._count(path, 200)
        envelope: "dict[str, Any]" = {
            "columns": _json_axis(result.columns),
            "rows": _json_axis(result.rows),
            "cells": _json_cells(result.cells),
            "partial": result.is_partial,
            "stats": dict(result.stats),
        }
        if result.degradations:
            envelope["degradations"] = [
                d.to_dict() for d in result.degradations
            ]
        self._send_json(200, envelope)


class ReproHTTPServer(ThreadingHTTPServer):
    """The serving socket: threads per connection over one coordinator."""

    daemon_threads = True

    def __init__(
        self,
        address: "tuple[str, int]",
        service: "ShardedQueryService",
        quotas: "TenantQuotas | None" = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quotas = quotas or TenantQuotas()
        self.metrics = service.warehouse.metrics
        self.verbose = verbose


def make_server(
    service: "ShardedQueryService",
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quotas: "TenantQuotas | None" = None,
    verbose: bool = False,
) -> ReproHTTPServer:
    """Bind (but do not run) the HTTP server; ``port=0`` picks a free
    port — read it back from ``server.server_address``."""
    return ReproHTTPServer((host, port), service, quotas, verbose)


def serve_http(
    service: "ShardedQueryService",
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    quotas: "TenantQuotas | None" = None,
    verbose: bool = False,
    ready: "threading.Event | None" = None,
) -> None:
    """Run the HTTP front end until interrupted (the CLI entry path)."""
    server = make_server(
        service, host, port, quotas=quotas, verbose=verbose
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
