"""Shard supervision: liveness, respawn, and breaker probe routing.

The sharded serving tier (PR 9) made shard death *detectable*; this
module makes it *survivable*.  A :class:`ShardSupervisor` owns every
:class:`~repro.service.shard.ShardClient` in the pool and runs one
monitor thread that:

* **watches liveness** — a client whose dispatcher saw pipe EOF, whose
  process ``is_alive()`` is false, or whose heartbeat ``ping`` missed
  its deadline is marked down, which fail-fasts every queued and future
  pending on it (no ``gather`` ever hangs on a corpse);
* **respawns** dead workers with exponential backoff plus deterministic
  jitter, capped by a restart-storm window (``storm_cap`` respawn
  attempts per ``storm_window_s``) so a worker that dies at startup
  cannot hot-loop the spawn machinery.  Workers re-arm ``REPRO_FAULTS``
  (and rank their locks under ``REPRO_LOCKDEP``) from the environment at
  every spawn — a respawned shard runs under exactly the chaos regime
  the current environment declares, not a stale copy;
* **routes breaker probes** — a per-shard circuit breaker that has
  half-opened gets its single probe slot spent on a supervisor ``ping``
  against the *respawned* worker, so an open breaker can actually close
  again instead of probing a corpse forever
  (``breaker_probe_total{outcome}`` counts the attempts).

Queries never talk to the supervisor's internals: the coordinator asks
:meth:`ShardSupervisor.client` for the live client (typed
:class:`~repro.errors.ShardDownError` while the shard is down), and the
retry path uses :meth:`await_live` to wait, bounded, for a respawn.

The ``supervisor.respawn`` failpoint fires at the top of every respawn
attempt, so the fault matrix can keep a shard down deterministically and
prove the storm cap and the degrade policies.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ShardDownError, ShardError
from repro.faults import inject_io_fault, register_failpoint
from repro.lint.lockdep import make_lock
from repro.service.shard import ShardClient, ShardSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.service.breaker import CircuitBreaker

__all__ = ["ShardSupervisor", "SupervisorConfig"]

FP_SUPERVISOR_RESPAWN = register_failpoint("supervisor.respawn")


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning for one supervisor (see docs/serving.md, failure
    semantics).

    ``backoff_base_ms`` doubles per consecutive failed respawn up to
    ``backoff_max_ms``; each delay gets up to ``backoff_jitter`` of
    itself added from a seeded RNG, so a pool of shards killed together
    does not thundering-herd the spawn machinery.  ``storm_cap`` respawn
    *attempts* within ``storm_window_s`` park the shard as ``failed``
    until the window slides — still self-healing, but rate-bounded.
    """

    heartbeat_s: float = 0.2
    ping_timeout_s: float = 10.0
    backoff_base_ms: float = 50.0
    backoff_max_ms: float = 2000.0
    backoff_jitter: float = 0.2
    storm_window_s: float = 30.0
    storm_cap: int = 8
    start_timeout_s: float = 60.0
    rpc_timeout_s: float = 60.0
    seed: int = 0


class _Slot:
    """One shard's supervision state.

    All fields are guarded by the supervisor lock except ``live``, a
    :class:`threading.Event` that waiters block on lock-free.
    """

    __slots__ = (
        "spec",
        "client",
        "state",
        "restarts",
        "backoff_ms",
        "next_attempt_at",
        "attempt_times",
        "last_error",
        "live",
    )

    def __init__(self, spec: ShardSpec, client: ShardClient) -> None:
        self.spec = spec
        self.client = client
        self.state = "live"  # live | down | failed (storm cap reached)
        self.restarts = 0
        self.backoff_ms = 0.0
        self.next_attempt_at = 0.0
        self.attempt_times: "deque[float]" = deque()
        self.last_error: "str | None" = None
        self.live = threading.Event()
        self.live.set()


class ShardSupervisor:
    """Owns the shard-client pool and keeps it alive.

    Parameters
    ----------
    specs:
        One :class:`~repro.service.shard.ShardSpec` per shard; the
        supervisor spawns the initial pool and raises (after reaping
        anything it did start) if any worker fails its hello.
    config:
        Backoff/storm/heartbeat tuning; defaults suit serving, tests
        pass tighter values.
    metrics:
        Registry for ``shard_up{shard}``, ``shard_respawns_total`` and
        ``breaker_probe_total{outcome}``; ``None`` = no metrics.
    clock:
        Monotonic clock in seconds (injectable for deterministic tests).
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        *,
        config: "SupervisorConfig | None" = None,
        metrics: "MetricsRegistry | None" = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self._metrics = metrics
        self._clock = clock or time.monotonic
        self._rng = random.Random(self.config.seed)
        self._breakers: "Sequence[CircuitBreaker] | None" = None
        self._lock = make_lock("ShardSupervisor._lock", reentrant=False)
        self._closed = False
        self._wake = threading.Event()
        slots: list[_Slot] = []
        try:
            for spec in specs:
                client = self._spawn(spec)
                slots.append(_Slot(spec, client))
        except BaseException:
            for slot in slots:
                slot.client.close()
            raise
        self._slots = slots
        for index in range(len(slots)):
            self._gauge_up(index, 1)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-shard-supervisor",
            daemon=True,
        )
        self._monitor.start()

    # -- helpers ------------------------------------------------------------------

    def _spawn(self, spec: ShardSpec) -> ShardClient:
        """One worker spawn; ``REPRO_FAULTS``/``REPRO_LOCKDEP`` are
        re-read from the *current* environment inside the child
        (``shard_worker_main`` arms from env), so chaos regimes follow
        respawns automatically."""
        return ShardClient(
            spec,
            start_timeout=self.config.start_timeout_s,
            rpc_timeout=self.config.rpc_timeout_s,
        )

    def _gauge_up(self, shard: int, value: int) -> None:
        if self._metrics is not None:
            self._metrics.gauge("shard_up", shard=str(shard)).set(value)

    def _count(self, name: str, **labels: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, **labels).inc()

    def attach_breakers(self, breakers: "Sequence[CircuitBreaker]") -> None:
        """Wire the per-shard breakers in (the service creates them after
        the pool exists); the monitor then spends half-open probe slots
        on supervisor pings."""
        if len(breakers) != len(self._slots):
            raise ShardError(
                f"{len(breakers)} breakers for {len(self._slots)} shards"
            )
        # Deliberately NOT copied: the service owns the list and tests
        # swap individual breakers in place; the supervisor must probe
        # whatever breaker currently guards the shard.
        self._breakers = breakers

    # -- query-path API -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._slots)

    @property
    def clients(self) -> "list[ShardClient]":
        """The current client per shard (down ones included — callers on
        the query path use :meth:`client`, which is liveness-checked)."""
        with self._lock:
            return [slot.client for slot in self._slots]

    def client(self, shard: int) -> ShardClient:
        """The live client for ``shard``; typed
        :class:`~repro.errors.ShardDownError` while it is down."""
        with self._lock:
            slot = self._slots[shard]
            if slot.state == "live" and not slot.client.down():
                return slot.client
            restarts = slot.restarts
            reason = slot.last_error or "process is down"
        raise ShardDownError(
            f"shard {shard} is down ({reason}); supervisor is respawning",
            shard=shard,
            restarts=restarts,
            retry_after_s=self.retry_after_s(shard),
        )

    def await_live(self, shard: int, timeout: float) -> "ShardClient | None":
        """Block until ``shard`` is live again (a respawned client) or
        ``timeout`` elapses; the retry path's bounded wait."""
        deadline = self._clock() + timeout
        while True:
            with self._lock:
                slot = self._slots[shard]
                if slot.state == "live" and not slot.client.down():
                    return slot.client
                event = slot.live
            remaining = deadline - self._clock()
            if remaining <= 0:
                return None
            self._wake.set()
            event.wait(min(remaining, 0.05))

    def notify_failure(self, shard: int, error: BaseException) -> None:
        """A gather failed with a shard-infrastructure error: check the
        process now instead of waiting for the next heartbeat."""
        with self._lock:
            slot = self._slots[shard]
            client = slot.client
        if isinstance(error, ShardError) and not client.process.is_alive():
            client.mark_down(f"process died: {error}")
        self._wake.set()

    def kill(self, shard: int) -> None:
        """SIGKILL one shard (the chaos harness's entry point)."""
        with self._lock:
            client = self._slots[shard].client
        client.kill()
        self._wake.set()

    # -- introspection ------------------------------------------------------------

    def restarts(self, shard: int) -> int:
        with self._lock:
            return self._slots[shard].restarts

    def retry_after_s(self, shard: "int | None" = None) -> float:
        """Seconds until the next respawn attempt could land — the
        ``Retry-After`` estimate for 503 responses.  Over all down
        shards when ``shard`` is None; at least 50 ms, 1 s when nothing
        is down (the generic backoff hint)."""
        now = self._clock()
        with self._lock:
            slots = (
                self._slots if shard is None else [self._slots[shard]]
            )
            waits = [
                slot.next_attempt_at - now
                for slot in slots
                if slot.state != "live"
            ]
        if not waits:
            return 1.0
        return max(max(waits), 0.05)

    def status(self) -> "list[dict[str, Any]]":
        """Per-shard supervision state for ``/healthz``."""
        now = self._clock()
        with self._lock:
            return [
                {
                    "shard": index,
                    "state": slot.state,
                    "alive": slot.state == "live"
                    and not slot.client.down()
                    and slot.client.process.is_alive(),
                    "restarts": slot.restarts,
                    "next_attempt_in_s": (
                        max(slot.next_attempt_at - now, 0.0)
                        if slot.state != "live"
                        else 0.0
                    ),
                    "last_error": slot.last_error,
                }
                for index, slot in enumerate(self._slots)
            ]

    # -- monitor ------------------------------------------------------------------

    def _backoff_delay_s(self, slot: _Slot) -> float:
        base = self.config.backoff_base_ms
        if slot.backoff_ms <= 0:
            delay = base
        else:
            delay = min(slot.backoff_ms * 2, self.config.backoff_max_ms)
        slot.backoff_ms = delay
        jitter = delay * self.config.backoff_jitter * self._rng.random()
        return (delay + jitter) / 1000.0

    def _mark_down(self, shard: int, slot: _Slot, reason: str) -> None:
        """Lock held.  Transition live -> down and schedule the first
        respawn attempt."""
        slot.state = "down"
        slot.last_error = reason
        slot.live.clear()
        slot.backoff_ms = 0.0
        slot.next_attempt_at = self._clock() + self._backoff_delay_s(slot)
        self._gauge_up(shard, 0)
        self._count("shard_deaths_total", shard=str(shard))

    def _check_liveness(self, shard: int, slot: _Slot) -> None:
        """Lock held.  A live slot whose worker died goes down."""
        client = slot.client
        if client.down():
            self._mark_down(
                shard, slot, client._down_reason or "pipe closed"
            )
            return
        if not client.process.is_alive():
            client.mark_down("process exited")
            self._mark_down(shard, slot, "process exited")

    def _try_respawn(self, shard: int, slot_spec: ShardSpec) -> "ShardClient | None":
        """No lock held (spawning is slow).  One respawn attempt:
        failpoint, spawn, heartbeat ping."""
        inject_io_fault(FP_SUPERVISOR_RESPAWN)
        client = self._spawn(slot_spec)
        try:
            client.request({"op": "ping"}, timeout=self.config.ping_timeout_s)
        except BaseException:
            client.close()
            raise
        return client

    def _respawn_due(self, shard: int, slot: _Slot, now: float) -> None:
        """Lock NOT held on entry for the spawn itself; bookkeeping
        re-acquires it."""
        with self._lock:
            if self._closed or slot.state == "live":
                return
            if now < slot.next_attempt_at:
                return
            # Restart-storm cap: count attempts inside the sliding window.
            window_start = now - self.config.storm_window_s
            while slot.attempt_times and slot.attempt_times[0] < window_start:
                slot.attempt_times.popleft()
            if len(slot.attempt_times) >= self.config.storm_cap:
                slot.state = "failed"
                slot.last_error = (
                    f"restart storm: {len(slot.attempt_times)} respawn "
                    f"attempts in {self.config.storm_window_s:.0f}s"
                )
                slot.next_attempt_at = (
                    slot.attempt_times[0] + self.config.storm_window_s
                )
                return
            slot.attempt_times.append(now)
            old_client = slot.client
            spec = slot.spec
        try:
            fresh = self._try_respawn(shard, spec)
        except BaseException as exc:
            with self._lock:
                slot.last_error = f"respawn failed: {exc!r}"
                slot.next_attempt_at = self._clock() + self._backoff_delay_s(
                    slot
                )
            self._count(
                "shard_respawns_total", shard=str(shard), outcome="fail"
            )
            return
        assert fresh is not None
        old_client.close(timeout=1.0)
        with self._lock:
            slot.client = fresh
            slot.state = "live"
            slot.restarts += 1
            slot.backoff_ms = 0.0
            slot.last_error = None
            slot.live.set()
        self._gauge_up(shard, 1)
        self._count("shard_respawns_total", shard=str(shard), outcome="ok")

    def _probe_breaker(self, shard: int, slot: _Slot) -> None:
        """No lock held.  Spend a half-open probe slot on a supervisor
        ping so the breaker can close without risking a user query."""
        assert self._breakers is not None
        breaker = self._breakers[shard]
        if not breaker.probe_allowed():
            return
        with self._lock:
            client = slot.client if slot.state == "live" else None
        if client is None:
            # No live worker to probe: give the slot back as a failure
            # so the breaker re-opens and backs off again.
            breaker.record_failure(
                ShardError(f"shard {shard} is down", shard=shard)
            )
            self._count("breaker_probe_total", outcome="down")
            return
        try:
            client.request(
                {"op": "ping"}, timeout=self.config.ping_timeout_s
            )
        except BaseException as exc:
            breaker.record_failure(
                exc
                if isinstance(exc, ShardError)
                else ShardError(f"shard {shard} probe failed: {exc!r}", shard=shard)
            )
            self._count("breaker_probe_total", outcome="fail")
        else:
            breaker.record_success()
            self._count("breaker_probe_total", outcome="ok")

    def _monitor_loop(self) -> None:
        while True:
            self._wake.wait(self.config.heartbeat_s)
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return
                for index, slot in enumerate(self._slots):
                    if slot.state == "live":
                        self._check_liveness(index, slot)
            now = self._clock()
            for index, slot in enumerate(self._slots):
                if slot.state != "live":
                    self._respawn_due(index, slot, now)
                if self._breakers is not None:
                    self._probe_breaker(index, slot)
            with self._lock:
                if self._closed:
                    return

    # -- lifecycle ----------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        self._monitor.join(timeout)
        for client in self.clients:
            client.close(timeout)

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ",".join(slot.state for slot in self._slots)
        return f"ShardSupervisor({len(self._slots)} shards: {states})"
