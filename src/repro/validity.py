"""Validity sets (Sec. 2 of the paper).

The validity set VS(d) of a member instance d is the set of leaf members of
the parameter dimension over which d is valid.  For an *ordered* parameter
dimension the leaves carry a total order; we represent each moment by its
order index (an ``int``), which makes the interval constructions used by the
perspective operator (Sec. 4.2) direct.

:class:`ValiditySet` is immutable and hashable, supports the usual set
algebra, and knows the size of its universe (the number of leaves of the
parameter dimension) so that complements and unbounded intervals like
``[p, +inf)`` are well defined.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ValidityError

__all__ = ["ValiditySet"]


class ValiditySet:
    """An immutable set of moments (leaf order indices) with a fixed universe.

    Parameters
    ----------
    moments:
        Iterable of integer order indices; each must lie in
        ``range(universe)``.
    universe:
        Number of leaf members of the parameter dimension.
    """

    __slots__ = ("_moments", "_universe")

    def __init__(self, moments: Iterable[int], universe: int) -> None:
        if universe < 0:
            raise ValidityError(f"universe must be non-negative, got {universe}")
        frozen = frozenset(moments)
        for moment in frozen:
            if not isinstance(moment, int):
                raise ValidityError(f"moment {moment!r} is not an int")
            if not 0 <= moment < universe:
                raise ValidityError(
                    f"moment {moment} outside universe range [0, {universe})"
                )
        self._moments = frozen
        self._universe = universe

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, universe: int) -> "ValiditySet":
        return cls((), universe)

    @classmethod
    def full(cls, universe: int) -> "ValiditySet":
        return cls(range(universe), universe)

    @classmethod
    def single(cls, moment: int, universe: int) -> "ValiditySet":
        return cls((moment,), universe)

    @classmethod
    def interval(cls, start: int, stop: int | None, universe: int) -> "ValiditySet":
        """Half-open interval ``[start, stop)``; ``stop=None`` means +inf."""
        if stop is None:
            stop = universe
        start = max(start, 0)
        stop = min(stop, universe)
        if stop <= start:
            return cls.empty(universe)
        return cls(range(start, stop), universe)

    # -- basic protocol ----------------------------------------------------

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def moments(self) -> frozenset[int]:
        return self._moments

    def sorted_moments(self) -> list[int]:
        return sorted(self._moments)

    def __contains__(self, moment: int) -> bool:
        return moment in self._moments

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._moments))

    def __len__(self) -> int:
        return len(self._moments)

    def __bool__(self) -> bool:
        return bool(self._moments)

    @property
    def is_empty(self) -> bool:
        return not self._moments

    def min(self) -> int:
        if not self._moments:
            raise ValidityError("min() of an empty validity set")
        return min(self._moments)

    def max(self) -> int:
        if not self._moments:
            raise ValidityError("max() of an empty validity set")
        return max(self._moments)

    # -- set algebra ---------------------------------------------------------

    def _check_compatible(self, other: "ValiditySet") -> None:
        if self._universe != other._universe:
            raise ValidityError(
                f"validity sets have different universes: "
                f"{self._universe} vs {other._universe}"
            )

    def union(self, other: "ValiditySet") -> "ValiditySet":
        self._check_compatible(other)
        return ValiditySet(self._moments | other._moments, self._universe)

    def intersection(self, other: "ValiditySet") -> "ValiditySet":
        self._check_compatible(other)
        return ValiditySet(self._moments & other._moments, self._universe)

    def difference(self, other: "ValiditySet") -> "ValiditySet":
        self._check_compatible(other)
        return ValiditySet(self._moments - other._moments, self._universe)

    def complement(self) -> "ValiditySet":
        return ValiditySet(
            frozenset(range(self._universe)) - self._moments, self._universe
        )

    def intersects(self, other: "ValiditySet") -> bool:
        self._check_compatible(other)
        return bool(self._moments & other._moments)

    def intersects_moments(self, moments: Iterable[int]) -> bool:
        return bool(self._moments.intersection(moments))

    def is_disjoint(self, other: "ValiditySet") -> bool:
        return not self.intersects(other)

    def issubset(self, other: "ValiditySet") -> bool:
        self._check_compatible(other)
        return self._moments <= other._moments

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # -- interval helpers (ordered parameter dimensions) --------------------

    def restrict_before(self, moment: int) -> "ValiditySet":
        """Moments strictly before ``moment``."""
        return ValiditySet(
            (m for m in self._moments if m < moment), self._universe
        )

    def restrict_from(self, moment: int) -> "ValiditySet":
        """Moments at or after ``moment``."""
        return ValiditySet(
            (m for m in self._moments if m >= moment), self._universe
        )

    def reversed(self) -> "ValiditySet":
        """Mirror the set around the universe midpoint.

        Used to derive backward perspective semantics from forward ones:
        moment ``m`` maps to ``universe - 1 - m``.
        """
        return ValiditySet(
            (self._universe - 1 - m for m in self._moments), self._universe
        )

    # -- equality / hashing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValiditySet):
            return NotImplemented
        return self._universe == other._universe and self._moments == other._moments

    def __hash__(self) -> int:
        return hash((self._universe, self._moments))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValiditySet({self.sorted_moments()}, universe={self._universe})"
