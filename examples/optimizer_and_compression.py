"""The Sec. 8 extensions: algebraic optimisation and compressed
perspective cubes.

1. Builds a what-if algebra plan (select one department's employees out of
   a forward perspective cube), shows the optimiser pushing the selection
   below the relocation, and times both plans.
2. Delta-encodes a perspective cube against its base: with ~1% of
   employees changing, the delta is a small fraction of the cube.

Run with:  python examples/optimizer_and_compression.py
"""

from __future__ import annotations

import time

from repro.core import (
    BaseCube,
    NegativeScenario,
    PerspectiveNode,
    SelectNode,
    Semantics,
    compress,
    execute_plan,
    explain,
    optimize,
)
from repro.core.plans import MemberIn
from repro.workload.workforce import WorkforceConfig, build_workforce


def timed_ms(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def main() -> None:
    workforce = build_workforce(
        WorkforceConfig(
            n_employees=250,
            n_departments=10,
            n_changing=25,
            n_accounts=5,
            n_scenarios=2,
            seed=31,
        )
    )
    cube = workforce.cube
    members = frozenset(workforce.changing_employees[:5])

    print("=== 1. Algebraic optimisation ===")
    plan = SelectNode(
        PerspectiveNode(BaseCube(), "Department", (0,), Semantics.FORWARD),
        "Department",
        MemberIn(members),
    )
    print("Original plan:")
    print(explain(plan))
    optimized, trace = optimize(plan)
    print("\nOptimised plan (rules fired: " + ", ".join(trace.rules_fired) + "):")
    print(explain(optimized))

    original_result, original_ms = timed_ms(lambda: execute_plan(plan, cube))
    optimized_result, optimized_ms = timed_ms(
        lambda: execute_plan(optimized, cube)
    )
    assert original_result.leaf_equal(optimized_result)
    print(f"\noriginal : {original_ms:8.1f} ms")
    print(f"optimised: {optimized_ms:8.1f} ms "
          f"({original_ms / max(optimized_ms, 0.001):.1f}x faster, same result)")
    print()

    print("=== 2. Compressed perspective cubes ===")
    scenario = NegativeScenario("Department", ["Jan"], Semantics.FORWARD)
    result = scenario.apply(cube)
    compressed = compress(cube, result)
    print(f"base cube cells   : {cube.n_leaf_cells}")
    print(f"delta cells       : {compressed.delta_cells} "
          f"({len(compressed.overrides)} overrides, "
          f"{len(compressed.deletions)} deletions)")
    print(f"compression ratio : {compressed.compression_ratio:.3f} "
          "(delta / full output cube)")
    roundtrip = compressed.materialize()
    print(f"lossless roundtrip: {roundtrip.leaf_equal(result.leaf_cube)}")


if __name__ == "__main__":
    main()
