"""Quickstart: the paper's running example end to end.

Builds the Fig. 1/2 warehouse (Organization varying over Time, employee
Joe reclassified FTE -> PTE -> Contractor), then runs:

1. a classic MDX query (the Fig. 3 rendering),
2. a negative what-if query — forward semantics, visual mode, with
   perspectives {Feb, Apr} (the Fig. 4 output), and
3. a positive what-if query — "what if Lisa had been reclassified PTE in
   April?" (the Sec. 3.4 example).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Warehouse
from repro.workload import build_running_example


def main() -> None:
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube, name="Warehouse")

    print("=== Member instances of Joe (validity sets over months 0-11) ===")
    for instance in example.org.instances_of("Joe"):
        print(f"  {instance.qualified_name:16s} VS = {instance.validity.sorted_moments()}")
    print()

    print("=== Static analysis: catch bad what-if queries before execution ===")
    report = warehouse.analyze(
        """
        WITH CHANGES {([Joe], [FTE], [PTE], [Mar])} FOR Organization
        SELECT {Time.[Qtr1]} ON COLUMNS FROM Warehouse
        """
    )
    for diagnostic in report:
        print(f"  {diagnostic.to_text()}")
    print("  (at Mar, Joe's instance is under Contractor, not FTE —")
    print("   Warehouse.query would refuse this; analyze=False overrides)")
    print()

    print("=== 1. Classic MDX: Joe-as-Contractor salary by quarter x state ===")
    result = warehouse.query(
        """
        SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
               Location.[East].Children ON ROWS
        FROM Warehouse
        WHERE (Organization.[Contractor].[Joe], Measures.[Salary])
        """
    )
    print(result.to_text())
    print()

    print("=== 2. Negative scenario: WITH PERSPECTIVE {Feb, Apr} FORWARD VISUAL ===")
    print("   (PTE/Joe inherits Mar's salary from Contractor/Joe — Fig. 4)")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr],
                Time.[May], Time.[Jun]} ON COLUMNS,
               {[Joe], [Lisa], [Tom], [Jane]} ON ROWS
        FROM Warehouse
        WHERE ([NY], [Salary])
        """
    )
    print(result.to_text())
    print()

    print("=== 3. Positive scenario: what if Lisa moved to PTE in April? ===")
    result = warehouse.query(
        """
        WITH CHANGES {([Lisa], FTE, PTE, Apr)} FOR Organization VISUAL
        SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
               {[FTE], [PTE], [Lisa]} ON ROWS
        FROM Warehouse
        WHERE ([NY], [Salary])
        """
    )
    print(result.to_text())
    print()
    print("PTE's Qtr2 total now includes Lisa's relocated Apr-Jun salary.")


if __name__ == "__main__":
    main()
