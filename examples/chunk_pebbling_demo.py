"""Chunk merging, pebbling, and dimension order (Sec. 5 walkthrough).

Reproduces the paper's Sec. 5.2 development end to end:

1. the exact Fig. 8/9 merge dependency graph (products p, q, r, s),
   its node costs, and the pebbling heuristic reaching the 3-pebble
   optimum;
2. a merge dependency graph built from a real chunked retail cube under a
   forward perspective query;
3. Lemma 5.1: memory for a varying-dimension-first scan order vs a
   varying-dimension-last one.

Run with:  python examples/chunk_pebbling_demo.py
"""

from __future__ import annotations

from repro.core.dimension_order import (
    choose_dimension_order,
    memory_for_dimension_order,
)
from repro.core.merge_graph import build_merge_graph, fig8_example_graph
from repro.core.pebbling import (
    node_cost,
    optimal_pebbles,
    pebble,
    pebbles_for_order,
)
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.workload.retail import RetailConfig, build_retail


def fig9_walkthrough() -> None:
    print("=== Fig. 8/9: products p, q, r, s across chunks 1..10 ===")
    graph = fig8_example_graph()
    print(f"edges: {sorted(tuple(sorted(e)) for e in graph.edges)}")
    costs = {node: node_cost(graph, node) for node in sorted(graph.nodes)}
    print(f"node costs (paper: 1,3,6,7 -> 1; 5,9,10 -> 0): {costs}")

    result = pebble(graph)
    print(f"heuristic read order : {result.order}")
    print(f"heuristic max pebbles: {result.max_pebbles}")
    print(f"optimal pebbles      : {optimal_pebbles(graph)}")
    naive = pebbles_for_order(graph, sorted(graph.nodes))
    print(f"naive 1..10 order    : {naive} pebbles")
    print()


def retail_merge_graph() -> None:
    print("=== Merge graph over a real chunked retail cube ===")
    retail = build_retail(
        RetailConfig(
            n_groups=6, products_per_group=4, n_varying=6, max_moves=3, seed=17
        )
    )
    chunked, spec = retail.chunked(chunk_shape=(1, 3, 2))
    pset = PerspectiveSet([0, 6], 12)
    graph = build_merge_graph(spec, pset, Semantics.FORWARD)
    print(
        f"varying products: {retail.varying_products} -> merge graph with "
        f"{graph.number_of_nodes()} chunks, {graph.number_of_edges()} edges"
    )
    result = pebble(graph)
    grid = chunked.grid
    naive_order = sorted(
        graph.nodes, key=lambda c: grid.linear_index(c, grid.default_order())
    )
    print(f"pebbling heuristic: {result.max_pebbles} co-resident chunks")
    print(f"naive scan order  : {pebbles_for_order(graph, naive_order)}")

    query = run_perspective_query(
        spec, retail.varying_products, pset, Semantics.FORWARD
    )
    print(
        f"forward query over all varying products: "
        f"{query.chunks_read} chunk reads, memory high-water "
        f"{query.memory_high_water} chunks"
    )
    print()

    print("=== Lemma 5.1: dimension order vs memory ===")
    first = choose_dimension_order(grid, varying_axes=[0])
    last = tuple(list(first[1:]) + [0])
    print(f"varying-first order {first}: "
          f"{memory_for_dimension_order(graph, grid, first)} chunks")
    print(f"varying-last  order {last}: "
          f"{memory_for_dimension_order(graph, grid, last)} chunks")


def main() -> None:
    fig9_walkthrough()
    retail_merge_graph()


if __name__ == "__main__":
    main()
