"""Workforce planning: the paper's introductory what-if scenario.

Budget is allocated per employee *type* (FTE / PTE / Contractor), but the
type-mix changed during the year and monthly total expenses show large
variance.  Question (Sec. 1): **is the variance caused by the type-mix
changes?**  To test it, we issue a what-if query that "super-imposes the
employee type distribution as it existed in the first month of the year
over the subsequent 11 months, but using actual employee salaries from
each month" — i.e. perspectives {Jan} with dynamic forward semantics and
visual mode.

If the per-type monthly series flatten out under the hypothetical
structure, the variance was structural; if they stay noisy, it was
salary-driven.

Run with:  python examples/workforce_planning.py
"""

from __future__ import annotations

from statistics import pvariance

from repro import (
    Cube,
    CubeSchema,
    Dimension,
    Mode,
    NegativeScenario,
    Semantics,
    Warehouse,
    is_missing,
)

MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


def build_warehouse() -> Warehouse:
    """Twelve employees with stable salaries but a churning type-mix."""
    org = Dimension("Organization")
    org.add_children(None, ["FTE", "PTE", "Contractor"])
    time = Dimension("Time", ordered=True)
    for month in MONTHS:
        time.add_member(month)
    measures = Dimension("Measures", is_measures=True)
    measures.add_member("Expense")

    schema = CubeSchema([org, time, measures])
    varying = schema.make_varying("Organization", "Time")

    # Employees e0..e11: e_i starts as FTE if i < 6, PTE if i < 9, else
    # Contractor.  Salaries are type-dependent and perfectly stable:
    # FTE 12, PTE 6, Contractor 9 (per month).
    salary_of_type = {"FTE": 12.0, "PTE": 6.0, "Contractor": 9.0}
    employees = [f"e{i}" for i in range(12)]
    for index, name in enumerate(employees):
        home = "FTE" if index < 6 else ("PTE" if index < 9 else "Contractor")
        org.add_member(name, home)
        varying.assign(name, home)

    # The churn: from March, several FTEs are converted to contractors;
    # from August two contractors become PTEs.
    for name in ("e0", "e1", "e2"):
        varying.reparent(name, "Contractor", "Mar")
    for name in ("e0", "e9"):
        varying.reparent(name, "PTE", "Aug")

    cube = Cube(schema)
    for name in employees:
        for instance in varying.instances_of(name):
            employee_type = instance.path[1]
            for t in instance.validity:
                cube.set_value(
                    (instance.full_path, MONTHS[t], "Expense"),
                    salary_of_type[employee_type],
                )
    return Warehouse(schema, cube, name="Workforce")


def monthly_series(view, schema, employee_type: str) -> list[float]:
    values = []
    for month in MONTHS:
        value = view.effective_value(
            schema.address(Organization=employee_type, Time=month, Measures="Expense")
        )
        values.append(0.0 if is_missing(value) else float(value))
    return values


def print_series(title: str, series: dict[str, list[float]]) -> None:
    print(title)
    header = "type        | " + " | ".join(m.rjust(4) for m in MONTHS) + " | variance"
    print(header)
    print("-" * len(header))
    for employee_type, values in series.items():
        cells = " | ".join(f"{v:4.0f}" for v in values)
        print(f"{employee_type:11s} | {cells} | {pvariance(values):8.1f}")
    print()


def main() -> None:
    warehouse = build_warehouse()
    schema = warehouse.schema

    actual = {
        t: monthly_series(warehouse.cube, schema, t)
        for t in ("FTE", "PTE", "Contractor")
    }
    print_series("=== Actual monthly expense per type (with type-mix churn) ===", actual)

    scenario = NegativeScenario(
        "Organization", ["Jan"], Semantics.FORWARD, Mode.VISUAL
    )
    hypothetical = scenario.apply(warehouse.cube)
    frozen = {
        t: monthly_series(hypothetical, schema, t)
        for t in ("FTE", "PTE", "Contractor")
    }
    print_series(
        "=== What-if: January's type-mix imposed on the whole year "
        "(PERSPECTIVE {Jan} FORWARD VISUAL) ===",
        frozen,
    )

    actual_var = sum(pvariance(v) for v in actual.values())
    frozen_var = sum(pvariance(v) for v in frozen.values())
    print(f"Total per-type variance, actual structure:       {actual_var:8.1f}")
    print(f"Total per-type variance, hypothetical structure: {frozen_var:8.1f}")
    if frozen_var < actual_var / 10:
        print(
            "\nConclusion: the variance disappears once the type-mix is held "
            "constant - it was caused by the structural changes, not by "
            "salary movements."
        )
    else:
        print("\nConclusion: variance persists - salaries themselves moved.")


if __name__ == "__main__":
    main()
