"""An end-to-end analyst session over the workforce warehouse.

Chains together most of the library surface:

1. generate the (scaled) Sec. 6 workforce warehouse;
2. ask a Fig. 10-style extended-MDX question with Filter/Order/NON EMPTY;
3. save the warehouse to disk and reload it (JSON round trip);
4. run a what-if and compute period-to-date on the hypothetical cube;
5. aggregate the perspective cube via delta adjustment instead of a full
   recompute, and compress the result against the base.

Run with:  python examples/analyst_walkthrough.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import NegativeScenario, Semantics, Mode, load_warehouse, save_warehouse
from repro.core.compression import compress
from repro.core.delta_aggregate import adjusted_group_by
from repro.core.perspective import PerspectiveSet
from repro.core.perspective_cube import run_perspective_query
from repro.olap.timeseries import period_to_date
from repro.workload.workforce import WorkforceConfig, build_workforce

MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


def main() -> None:
    workforce = build_workforce(
        WorkforceConfig(
            n_employees=120,
            n_departments=8,
            n_changing=12,
            n_accounts=4,
            n_scenarios=2,
            seed=99,
        )
    )
    warehouse = workforce.warehouse
    account = workforce.accounts[0]

    print("=== 1. Top movers by January value, under January's structure ===")
    result = warehouse.query(
        f"""
        WITH SET [Movers] AS {{[EmployeesWithAtleastOneMove-Set1].Children}}
        PERSPECTIVE {{(Jan)}} FOR Department DYNAMIC FORWARD VISUAL
        SELECT {{Period.[Q1], Period.[Q2], Period.[Q3], Period.[Q4]}} ON COLUMNS,
               NON EMPTY Head(Order({{[Movers]}},
                              ([{account}], Period.[Jan]), DESC), 3)
               DIMENSION PROPERTIES [Department] ON ROWS
        FROM [App].[Db]
        WHERE ([{account}], [Current], [Local], [BU Version_1],
               [HSP_InputValue])
        """
    )
    print(result.to_text())
    print()

    print("=== 2. Save / reload the warehouse (JSON directory) ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = save_warehouse(warehouse, Path(tmp) / "workforce")
        files = sorted(p.name for p in path.iterdir())
        reloaded = load_warehouse(path)
        print(f"saved {files}; reloaded cube has "
              f"{reloaded.cube.n_leaf_cells} leaf cells "
              f"(original {warehouse.cube.n_leaf_cells})")
    print()

    print("=== 3. Period-to-date on a hypothetical structure ===")
    employee = workforce.changing_employees[0]
    scenario = NegativeScenario(
        "Department", ["Jan"], Semantics.FORWARD, Mode.VISUAL
    )
    whatif = scenario.apply(warehouse.cube)
    label = next(iter(
        lbl for lbl in whatif.validity_out if lbl.endswith("/" + employee)
    ))
    address = warehouse.schema.address(
        Department=label, Period="Jun", Account=account,
        Scenario="Current", Currency="Local", Version="BU Version_1",
        Value="HSP_InputValue",
    )
    period = warehouse.schema.dimension("Period")
    ytd = period_to_date(whatif, period, address)
    print(f"{employee}'s Jun YTD under the frozen-January structure: "
          f"{float(ytd):.2f} (as {label.split('/')[-2]})")
    print()

    print("=== 4. Delta aggregation + compression over the chunk store ===")
    chunked, spec = workforce.chunked()
    pset = PerspectiveSet.from_names(["Jan"], workforce.employee_varying)
    query = run_perspective_query(
        spec, workforce.changing_employees, pset, Semantics.FORWARD
    )
    dims = (spec.axis_index, spec.param_index)
    adjusted = adjusted_group_by(
        spec, query, workforce.changing_employees, dims
    )
    print(f"visual Department x Period group-by adjusted in place: "
          f"shape {adjusted.data.shape}, "
          f"{int((~np.isnan(adjusted.data)).sum())} "
          "non-empty cells")

    compressed = compress(warehouse.cube, scenario.apply(warehouse.cube))
    print(f"perspective cube delta: {compressed.delta_cells} cells, "
          f"ratio {compressed.compression_ratio:.3f}")


if __name__ == "__main__":
    main()
