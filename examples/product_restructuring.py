"""Product restructuring: positive scenarios over a retail cube with rules.

Marketing plans to move two products between product families in April
("product family changes can influence bundled options", Sec. 1).  Before
applying the change, the analyst super-imposes it on the data and checks
the impact on each family's Sales and Margin — a positive what-if scenario
(Sec. 3.4), evaluated in visual mode so the derived Margin rule
(``Margin = Sales - COGS``, with the East-specific variant
``0.93 * Sales - COGS``) is recomputed over the hypothetical cube.

Run with:  python examples/product_restructuring.py
"""

from __future__ import annotations

from repro import (
    ChangeTuple,
    Cube,
    CubeSchema,
    Dimension,
    Mode,
    PositiveScenario,
    RuleEngine,
    Warehouse,
    is_missing,
)

MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


def build_warehouse() -> Warehouse:
    product = Dimension("Product")
    product.add_children(None, ["AudioVideo", "Appliances"])
    product.add_children("AudioVideo", ["TV", "Radio", "Soundbar"])
    product.add_children("Appliances", ["Fridge", "Mixer"])

    time = Dimension("Time", ordered=True)
    for month in MONTHS:
        time.add_member(month)

    market = Dimension("Market")
    market.add_children(None, ["East", "West"])

    measures = Dimension("Measures", is_measures=True)
    measures.add_children(None, ["Sales", "COGS", "Margin"])

    schema = CubeSchema([product, time, market, measures])
    schema.make_varying("Product", "Time")

    rules = RuleEngine(schema)
    # The paper's Sec. 2 rules (1) and (3).
    rules.define("Margin", "Sales - COGS")
    rules.define("Margin", "0.93 * Sales - COGS", scope={"Market": "East"})

    cube = Cube(schema, rules)
    monthly = {
        "TV": (100.0, 60.0),
        "Radio": (40.0, 25.0),
        "Soundbar": (55.0, 30.0),
        "Fridge": (80.0, 55.0),
        "Mixer": (20.0, 12.0),
    }
    varying = schema.varying_dimension("Product")
    for name, (sales, cogs) in monthly.items():
        (instance,) = varying.instances_of(name)
        for month in MONTHS:
            for market_name in ("East", "West"):
                cube.set_value(
                    (instance.full_path, month, market_name, "Sales"), sales
                )
                cube.set_value(
                    (instance.full_path, month, market_name, "COGS"), cogs
                )
    return Warehouse(schema, cube, name="Retail")


def family_report(view, schema, title: str) -> None:
    print(title)
    print(f"{'family':12s} | {'measure':7s} | {'Qtr1':>8s} | {'Qtr2+':>8s}")
    print("-" * 48)
    for family in ("AudioVideo", "Appliances"):
        for measure in ("Sales", "Margin"):
            q1 = 0.0
            rest = 0.0
            for index, month in enumerate(MONTHS):
                value = view.effective_value(
                    schema.address(
                        Product=family, Time=month, Market="Market",
                        Measures=measure,
                    )
                )
                if is_missing(value):
                    continue
                if index < 3:
                    q1 += float(value)
                else:
                    rest += float(value)
            print(f"{family:12s} | {measure:7s} | {q1:8.1f} | {rest:8.1f}")
    print()


def main() -> None:
    warehouse = build_warehouse()
    schema = warehouse.schema

    family_report(warehouse.cube, schema, "=== Actual family totals ===")

    print("Planned change: move Soundbar and Mixer into each other's family")
    print("from April (R = {(Soundbar, AudioVideo, Appliances, Apr),")
    print("                 (Mixer, Appliances, AudioVideo, Apr)}).\n")
    scenario = PositiveScenario(
        "Product",
        [
            ChangeTuple("Soundbar", "AudioVideo", "Appliances", "Apr"),
            ChangeTuple("Mixer", "Appliances", "AudioVideo", "Apr"),
        ],
        Mode.VISUAL,
    )
    hypothetical = scenario.apply(warehouse.cube)
    family_report(
        hypothetical, schema, "=== Hypothetical family totals (visual mode) ==="
    )

    # The same scenario through the extended-MDX front door.
    result = warehouse.query(
        """
        WITH CHANGES {([Soundbar], AudioVideo, Appliances, Apr),
                      ([Mixer], Appliances, AudioVideo, Apr)} VISUAL
        SELECT {[Sales], [Margin]} ON COLUMNS,
               {[AudioVideo], [Appliances], [Soundbar], [Mixer]} ON ROWS
        FROM Retail
        WHERE ([East], Time.[Apr])
        """
    )
    print("=== Same scenario via extended MDX (East, April) ===")
    print(result.to_text())


if __name__ == "__main__":
    main()
