"""Location-driven changes: unordered parameter dimensions (scenario S2).

The paper stresses that "structural changes are not necessarily temporal,
but can vary by location" (Sec. 3.1).  Scenario S2: *what if FTE Lisa
performed some work in MA where she is classified as PTE?* — here
Organization varies over the **unordered** Location dimension: Lisa is
FTE in NY and CA but PTE in MA.

Static perspectives apply to unordered parameters (dynamic semantics need
an order and are rejected); we ask for the hours booked under each
classification and then view the warehouse from single-location
perspectives.

Run with:  python examples/location_what_if.py
"""

from __future__ import annotations

from repro import (
    Cube,
    CubeSchema,
    Dimension,
    NegativeScenario,
    Semantics,
    Warehouse,
)

LOCATIONS = ("NY", "MA", "CA")


def build_warehouse() -> Warehouse:
    org = Dimension("Organization")
    org.add_children(None, ["FTE", "PTE"])
    org.add_children("FTE", ["Lisa", "Joe"])
    org.add_member("Tom", "PTE")

    location = Dimension("Location")  # unordered parameter dimension
    for name in LOCATIONS:
        location.add_member(name)

    measures = Dimension("Measures", is_measures=True)
    measures.add_member("Hours")

    schema = CubeSchema([org, location, measures])
    varying = schema.make_varying("Organization", "Location")
    # S2: Lisa is FTE in NY and CA, PTE in MA.
    varying.assign("Lisa", "FTE", ["NY", "CA"])
    varying.assign("Lisa", "PTE", ["MA"])

    cube = Cube(schema)
    hours = {"NY": 120.0, "MA": 40.0, "CA": 60.0}
    for instance in varying.instances_of("Lisa"):
        for index in instance.validity:
            location_name = LOCATIONS[index]
            cube.set_value(
                (instance.full_path, location_name, "Hours"),
                hours[location_name],
            )
    for location_name in LOCATIONS:
        cube.set_value(("Organization/FTE/Joe", location_name, "Hours"), 100.0)
        cube.set_value(("Organization/PTE/Tom", location_name, "Hours"), 80.0)
    return Warehouse(schema, cube, name="FieldWork")


def main() -> None:
    warehouse = build_warehouse()

    print("=== Lisa's hours by classification and location ===")
    result = warehouse.query(
        """
        SELECT {[NY], [MA], [CA]} ON COLUMNS, {[Lisa]} ON ROWS
        FROM FieldWork WHERE ([Hours])
        """
    )
    print(result.to_text())
    print()

    print("=== Classification totals (FTE vs PTE hours) ===")
    result = warehouse.query(
        "SELECT {[NY], [MA], [CA]} ON COLUMNS, {[FTE], [PTE]} ON ROWS "
        "FROM FieldWork WHERE ([Hours])"
    )
    print(result.to_text())
    print()

    print("=== Perspective {MA}: the org structure as MA sees it ===")
    result = warehouse.query(
        """
        WITH PERSPECTIVE {(MA)} FOR Organization STATIC VISUAL
        SELECT {[NY], [MA], [CA]} ON COLUMNS,
               {[Lisa], [Joe], [Tom]} ON ROWS
        FROM FieldWork WHERE ([Hours])
        """
    )
    print(result.to_text())
    print()
    print("Only Lisa's MA instance (PTE/Lisa) survives; her NY and CA work")
    print("is hidden because FTE/Lisa is not valid at the MA perspective.")
    print()

    print("=== Dynamic semantics are rejected on unordered parameters ===")
    try:
        NegativeScenario(
            "Organization", ["MA"], Semantics.FORWARD
        ).apply(warehouse.cube)
    except Exception as error:  # noqa: BLE001 - demo output
        print(f"  QueryError: {error}")


if __name__ == "__main__":
    main()
