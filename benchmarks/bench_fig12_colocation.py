"""Fig. 12 — degree of co-location of related chunks vs query performance.

A single two-instance employee, dynamic forward, with the physical
separation between the instances' chunks grown to 1x..5x a base gap.
Wall-clock stays roughly flat (the Python engine reads the same chunks);
the *simulated* disk time in ``extra_info`` shows the paper's
rise-then-flatten shape driven by capped seek costs.
"""

from __future__ import annotations

import pytest

from repro.bench.fig12 import fig12_config, fig12_cost_model
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.errors import QueryError
from repro.workload.workforce import build_workforce

MULTIPLES = (1, 2, 3, 4, 5)
BASE_GAP = 1_000


def _build(multiple: int):
    workforce = build_workforce(fig12_config())
    chunked, spec = workforce.chunked(cost_model=fig12_cost_model())
    employee = workforce.warehouse.named_set("EmployeeS3").members[0]
    slots = spec.slots_of_member(employee)
    if len(slots) != 2:
        raise QueryError("Fig. 12 needs a two-instance employee")
    grid = chunked.grid
    positions = []
    for slot in slots:
        t0 = spec.validity_of_slot[slot].min()
        coord = [0] * grid.n_dims
        coord[spec.axis_index] = (
            spec.slot_row(slot) // grid.chunk_shape[spec.axis_index]
        )
        coord[spec.param_index] = t0 // grid.chunk_shape[spec.param_index]
        positions.append(chunked.store.position_of(tuple(coord)))
    positions.sort()
    extra = max(0, multiple * BASE_GAP - (positions[1] - positions[0]))
    chunked.store.insert_padding(after_position=positions[0], count=extra)
    return chunked, spec, employee


@pytest.mark.parametrize("multiple", MULTIPLES)
def test_fig12_separation(benchmark, multiple):
    chunked, spec, employee = _build(multiple)
    pset = PerspectiveSet([0, 3, 6, 9], 12)

    def run():
        return run_perspective_query(spec, [employee], pset, Semantics.FORWARD)

    benchmark(run)
    chunked.store.reset_stats()
    run_perspective_query(spec, [employee], pset, Semantics.FORWARD)
    benchmark.extra_info.update(chunked.store.stats.snapshot())
    benchmark.extra_info["separation_multiple"] = multiple
    benchmark.extra_info["file_extent"] = chunked.store.file_extent
