"""Query-throughput benchmark: perf engine vs naive evaluator.

Standalone usage (also the CI smoke job)::

    python benchmarks/bench_query_throughput.py --smoke
    python benchmarks/bench_query_throughput.py --json BENCH_query_engine.json

The full run asserts the engine is at least 5x faster than the naive
path on a >= 10k-leaf-cell cube with >= 100 derived result cells per
query; the smoke run only guards against a regression (the engine must
not be more than 1.25x *slower* than naive).  Both assert bit-identical
cell grids — that check lives inside the runner and aborts the benchmark
on any disagreement.

The module is also collectable by pytest (``pytest benchmarks/``), where
the same smoke-sized run backs a plain assertion-based test.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.query_engine import (
    full_config,
    load_history,
    measure_tracing_overhead,
    render_report,
    run_query_engine,
    smoke_config,
    write_baseline,
)

#: full runs must beat the naive path by this factor (ISSUE acceptance)
FULL_SPEEDUP_FLOOR = 5.0
#: history gate: cells_aggregated_per_second may not drop more than 25%
#: below the last committed history entry with the same config
THROUGHPUT_REGRESSION_FLOOR = 0.75
#: smoke runs merely must not regress past this slowdown
SMOKE_SLOWDOWN_CEILING = 1.25
#: tracing-enabled queries may cost at most 5% over tracing-disabled...
TRACE_OVERHEAD_CEILING = 1.05
#: ...plus this absolute slack (ms/query) so sub-millisecond smoke
#: queries are not failed by scheduler jitter alone
TRACE_OVERHEAD_SLACK_MS = 0.1


def check_report(report: dict, smoke: bool) -> None:
    assert report["identical"], "engine and naive grids disagree"
    if smoke:
        slowdown = (
            report["engine_ms_per_query"] / report["naive_ms_per_query"]
        )
        assert slowdown <= SMOKE_SLOWDOWN_CEILING, (
            f"batched evaluation is {slowdown:.2f}x slower than naive "
            f"(ceiling {SMOKE_SLOWDOWN_CEILING}x)"
        )
    else:
        assert report["leaf_cells"] >= 10_000, "full run needs >= 10k leaves"
        assert report["derived_result_cells_per_query"] >= 100
        assert report["speedup"] >= FULL_SPEEDUP_FLOOR, (
            f"speedup {report['speedup']}x is below the "
            f"{FULL_SPEEDUP_FLOOR}x floor"
        )


def check_throughput_history(
    report: dict, path: str = "BENCH_query_engine.json"
) -> str:
    """Gate ``cells_aggregated_per_second`` against the committed history.

    Compares only against the most recent history entry whose ``config``
    matches this run's (a smoke run is never judged against a full-scale
    entry); a >25% drop fails.  Returns a human-readable verdict for the
    CI log; entries without the metric (the pre-columnar seed) are
    skipped.
    """
    current = report.get("cells_aggregated_per_second")
    if not current:
        return "throughput gate skipped: report has no cells_aggregated_per_second"
    matching = [
        entry
        for entry in load_history(path)
        if entry.get("config") == report.get("config")
        and entry.get("cells_aggregated_per_second")
    ]
    if not matching:
        return (
            "throughput gate skipped: no committed history entry with a "
            "matching config"
        )
    committed = matching[-1]["cells_aggregated_per_second"]
    floor = committed * THROUGHPUT_REGRESSION_FLOOR
    assert current >= floor, (
        f"cells_aggregated_per_second regressed: {current:,.0f} vs "
        f"{committed:,.0f} committed "
        f"(floor {floor:,.0f} = {THROUGHPUT_REGRESSION_FLOOR:.0%})"
    )
    return (
        f"throughput gate ok: {current:,.0f} cells/s vs "
        f"{committed:,.0f} committed (floor {floor:,.0f})"
    )


def check_overhead_report(report: dict) -> None:
    assert report["identical"], "tracing changed query results"
    assert report["profiled"], "traced queries did not carry profiles"
    ceiling = (
        report["disabled_ms_per_query"] * TRACE_OVERHEAD_CEILING
        + TRACE_OVERHEAD_SLACK_MS
    )
    assert report["enabled_ms_per_query"] <= ceiling, (
        f"tracing overhead too high: {report['enabled_ms_per_query']}ms "
        f"enabled vs {report['disabled_ms_per_query']}ms disabled "
        f"(ceiling {ceiling:.4f}ms)"
    )


def test_query_throughput_smoke() -> None:
    """Pytest entry point: smoke-sized equivalence + regression guard."""
    report = run_query_engine(smoke_config())
    check_report(report, smoke=True)


def test_tracing_overhead_smoke() -> None:
    """Pytest entry point: tracing must cost <= 5% (+jitter slack) and
    must not perturb results."""
    report = measure_tracing_overhead(smoke_config())
    check_overhead_report(report)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload; only guard against a regression vs naive",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the report as JSON (the committed baseline)",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="also measure tracing-enabled vs tracing-disabled query cost "
        "and assert the overhead stays within 5%% (+jitter slack)",
    )
    parser.add_argument(
        "--gate-history",
        action="store_true",
        help="fail if cells_aggregated_per_second drops more than 25%% "
        "below the last committed BENCH_query_engine.json history entry "
        "with a matching config",
    )
    args = parser.parse_args(argv)
    config = smoke_config() if args.smoke else full_config()
    report = run_query_engine(config)
    print(render_report(report))
    if args.json:
        write_baseline(report, args.json)
        print(f"baseline written to {args.json}")
    check_report(report, smoke=args.smoke)
    if args.gate_history:
        print(check_throughput_history(report))
    if args.trace_overhead:
        overhead = measure_tracing_overhead(config)
        print(
            f"tracing overhead: {overhead['disabled_ms_per_query']}ms/query "
            f"disabled, {overhead['enabled_ms_per_query']}ms/query enabled "
            f"({overhead['overhead_ratio']}x), "
            f"bit-identical={overhead['identical']}"
        )
        check_overhead_report(overhead)
    return 0


if __name__ == "__main__":
    sys.exit(main())
