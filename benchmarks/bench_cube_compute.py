"""Baseline — Zhao et al. chunk-scan cube computation.

Shared single-scan simultaneous aggregation of all group-bys vs one scan
per group-by, over the retail cube.  The shared scan reads each chunk once
regardless of how many group-bys are computed.
"""

from __future__ import annotations

import pytest

from repro.storage.cube_compute import compute_group_bys, compute_group_bys_naive
from repro.storage.lattice import all_group_bys
from repro.workload.retail import RetailConfig, build_retail


@pytest.fixture(scope="module")
def retail_store():
    retail = build_retail(
        RetailConfig(
            n_groups=6, products_per_group=6, n_varying=4, n_locations=4, seed=23
        )
    )
    chunked, _ = retail.chunked(chunk_shape=(4, 3, 2))
    return chunked.store


def test_shared_scan_all_group_bys(benchmark, retail_store):
    group_bys = all_group_bys(3)
    benchmark(lambda: compute_group_bys(retail_store, group_bys))
    retail_store.reset_stats()
    compute_group_bys(retail_store, group_bys)
    benchmark.extra_info["chunk_reads"] = retail_store.stats.chunk_reads
    benchmark.extra_info["group_bys"] = len(group_bys)


def test_naive_scan_per_group_by(benchmark, retail_store):
    group_bys = all_group_bys(3)
    benchmark(lambda: compute_group_bys_naive(retail_store, group_bys))
    retail_store.reset_stats()
    compute_group_bys_naive(retail_store, group_bys)
    benchmark.extra_info["chunk_reads"] = retail_store.stats.chunk_reads
    benchmark.extra_info["group_bys"] = len(group_bys)
