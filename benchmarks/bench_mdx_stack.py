"""End-to-end benchmark through the full extended-MDX stack.

The paper's experiments run MDX queries against the engine; the other
figure benchmarks here drive the chunk engine directly.  This suite times
the *whole* stack — parse, scenario application on the semantic cube, axis
expansion, cell evaluation — for the Fig. 10-style query family, so the
language/semantic-layer overhead is visible next to the chunk-engine
numbers.
"""

from __future__ import annotations

import pytest

from repro.workload.workforce import WorkforceConfig, build_workforce

MONTH_SET = ", ".join(
    f"Period.[{m}]"
    for m in ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
              "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
)


@pytest.fixture(scope="module")
def workforce():
    return build_workforce(
        WorkforceConfig(
            n_employees=80,
            n_departments=6,
            n_changing=10,
            n_accounts=4,
            n_scenarios=2,
            seed=19,
            density=0.3,
        )
    )


def _query(semantics_kw: str, k: int) -> str:
    points = ", ".join(
        f"({p})" for p in ("Jan", "Apr", "Jul", "Oct")[:k]
    )
    return f"""
        WITH PERSPECTIVE {{{points}}} FOR Department {semantics_kw}
        SELECT {{[Account].Levels(0).Members}} ON COLUMNS,
               {{CrossJoin(
                   {{[EmployeesWithAtleastOneMove-Set1].Children}},
                   {{{MONTH_SET}}}
               )}} DIMENSION PROPERTIES [Department] ON ROWS
        FROM [App].[Db]
        WHERE ([Current], [Local], [BU Version_1], [HSP_InputValue])
    """


@pytest.mark.parametrize("k", (1, 2, 4))
def test_mdx_static_full_stack(benchmark, workforce, k):
    text = _query("STATIC", k)
    result = benchmark(lambda: workforce.warehouse.query(text))
    benchmark.extra_info["perspectives"] = k
    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["columns"] = len(result.columns)


@pytest.mark.parametrize("k", (1, 2, 4))
def test_mdx_forward_full_stack(benchmark, workforce, k):
    text = _query("DYNAMIC FORWARD", k)
    result = benchmark(lambda: workforce.warehouse.query(text))
    benchmark.extra_info["perspectives"] = k
    benchmark.extra_info["rows"] = len(result.rows)


def test_mdx_parse_only(benchmark):
    """Parsing cost alone, for the overhead breakdown."""
    from repro.mdx.parser import parse_query

    text = _query("DYNAMIC FORWARD", 4)
    benchmark(lambda: parse_query(text))
