"""Sharded-serving benchmark: scatter-gather throughput vs shard count.

Standalone usage (also the CI smoke job)::

    python benchmarks/bench_serve.py --smoke
    python benchmarks/bench_serve.py --json BENCH_serve.json

The full run drives distinct-fingerprint PERSPECTIVE queries through
1/2/4 shard processes and asserts at least a
:data:`FULL_SPEEDUP_FLOOR` throughput gain at 4 shards over 1 shard;
the smoke run (1 vs 2 shards on a small cube) only checks the tier's
invariants — every grid bit-identical to single-process evaluation and
an owned-cell fraction high enough that the shards did the work.

The module is also collectable by pytest (``pytest benchmarks/``),
where the same smoke-sized run backs a plain assertion-based test.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.serve import (
    OWNED_FRACTION_FLOOR,
    full_config,
    load_history,
    render_report,
    run_serve_bench,
    smoke_config,
    write_baseline,
)

#: full runs must gain at least this much throughput at 4 shards vs 1
#: (ISSUE acceptance: >= 2.5x at 4 workers with bit-identical grids)
FULL_SPEEDUP_FLOOR = 2.5
#: history gate: 4-shard queries_per_second may not drop more than 25%
#: below the last committed history entry with the same config
THROUGHPUT_REGRESSION_FLOOR = 0.75


def check_report(report: dict, smoke: bool) -> None:
    assert report["identical"], "sharded and single-process grids disagree"
    for n_shards, stats in report["shards"].items():
        assert stats["owned_fraction"] >= OWNED_FRACTION_FLOOR, (
            f"{n_shards} shard(s): only {stats['owned_fraction']:.0%} of "
            f"cells ran on shards (floor {OWNED_FRACTION_FLOOR:.0%}) — the "
            "benchmark degraded into measuring the local fallback path"
        )
    if not smoke:
        speedup = report.get("speedup_at_4")
        assert speedup is not None, "full run must include a 4-shard config"
        assert speedup >= FULL_SPEEDUP_FLOOR, (
            f"4-shard speedup {speedup}x is below the "
            f"{FULL_SPEEDUP_FLOOR}x floor"
        )


def check_throughput_history(report: dict, path: str = "BENCH_serve.json") -> str:
    """Gate 4-shard throughput against the committed history (same
    config only); a >25% drop fails.  Returns the CI-log verdict."""
    stats = report["shards"].get("4")
    if stats is None:
        return "serve throughput gate skipped: no 4-shard config in this run"
    matching = [
        entry
        for entry in load_history(path)
        if entry.get("config") == report.get("config")
        and entry.get("shards", {}).get("4", {}).get("queries_per_second")
    ]
    if not matching:
        return (
            "serve throughput gate skipped: no committed history entry "
            "with a matching config"
        )
    committed = matching[-1]["shards"]["4"]["queries_per_second"]
    floor = committed * THROUGHPUT_REGRESSION_FLOOR
    current = stats["queries_per_second"]
    assert current >= floor, (
        f"4-shard throughput regressed: {current:,.2f} q/s vs "
        f"{committed:,.2f} committed "
        f"(floor {floor:,.2f} = {THROUGHPUT_REGRESSION_FLOOR:.0%})"
    )
    return (
        f"serve throughput gate ok: {current:,.2f} q/s vs "
        f"{committed:,.2f} committed (floor {floor:,.2f})"
    )


def test_serve_smoke() -> None:
    """Pytest entry point: smoke-sized bit-identity + owned-fraction run."""
    report = run_serve_bench(smoke_config())
    check_report(report, smoke=True)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, 1 vs 2 shards; invariants only, no speedup floor",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also append the report to a JSON history file (the committed "
        "baseline)",
    )
    parser.add_argument(
        "--gate-history",
        action="store_true",
        help="fail if 4-shard queries_per_second drops more than 25%% below "
        "the last committed BENCH_serve.json entry with a matching config",
    )
    args = parser.parse_args(argv)
    config = smoke_config() if args.smoke else full_config()
    report = run_serve_bench(config)
    print(render_report(report))
    if args.json:
        write_baseline(report, args.json)
        print(f"baseline written to {args.json}")
    check_report(report, smoke=args.smoke)
    if args.gate_history:
        print(check_throughput_history(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
