"""Ablation — Lemma 5.1: varying dimension first vs last in scan order.

Benchmarks the memory-requirement evaluation and records the resulting
max co-resident chunk counts for both orders in ``extra_info``; the lemma
says varying-first never needs more memory.
"""

from __future__ import annotations

import pytest

from repro.core.dimension_order import (
    choose_dimension_order,
    memory_for_dimension_order,
)
from repro.core.merge_graph import build_merge_graph
from repro.core.perspective import PerspectiveSet, Semantics
from repro.workload.retail import RetailConfig, build_retail

VARYING_COUNTS = (2, 4, 8)


def _graph(n_varying: int):
    retail = build_retail(
        RetailConfig(
            n_groups=6,
            products_per_group=4,
            n_varying=n_varying,
            max_moves=3,
            n_locations=2,
            seed=17,
        )
    )
    chunked, spec = retail.chunked(chunk_shape=(1, 3, 2))
    graph = build_merge_graph(
        spec, PerspectiveSet([0, 6], 12), Semantics.FORWARD
    )
    return graph, chunked.grid


@pytest.mark.parametrize("n_varying", VARYING_COUNTS)
def test_lemma51_dimension_order(benchmark, n_varying):
    graph, grid = _graph(n_varying)

    varying_first = choose_dimension_order(grid, varying_axes=[0])
    varying_last = tuple(list(varying_first[1:]) + [0])

    def run():
        return (
            memory_for_dimension_order(graph, grid, varying_first),
            memory_for_dimension_order(graph, grid, varying_last),
        )

    first_memory, last_memory = benchmark(run)
    assert first_memory <= last_memory  # Lemma 5.1
    benchmark.extra_info["varying_first_memory"] = first_memory
    benchmark.extra_info["varying_last_memory"] = last_memory
