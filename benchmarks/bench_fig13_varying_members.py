"""Fig. 13 — number of varying member instances vs query performance.

A static 4-perspective query over 10..50 employees with exactly 4
reporting-structure changes each (the paper's 50..250, scaled 5x down).
The paper's claim: query time is linear in the number of varying member
instances in scope.
"""

from __future__ import annotations

import pytest

from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query

STEPS = (10, 20, 30, 40, 50)


@pytest.mark.parametrize("n", STEPS)
def test_fig13_varying_members(benchmark, fig13_setup, n):
    workforce, chunked, spec = fig13_setup
    members = workforce.changing_employees[:n]
    pset = PerspectiveSet([0, 3, 6, 9], 12)  # Jan, Apr, Jul, Oct

    def run():
        return run_perspective_query(spec, members, pset, Semantics.STATIC)

    result = benchmark(run)
    chunked.store.reset_stats()
    run_perspective_query(spec, members, pset, Semantics.STATIC)
    benchmark.extra_info.update(chunked.store.stats.snapshot())
    benchmark.extra_info["employees"] = n
    benchmark.extra_info["instances"] = len(result.rows)
