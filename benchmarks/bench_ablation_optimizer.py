"""Ablation — algebraic plan optimisation (Sec. 8 future work).

Selection pushdown through a perspective: the unoptimised plan relocates
the whole cube and then selects one member; the optimised plan selects
first, so relocation touches a fraction of the cells.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import optimize
from repro.core.perspective import Semantics
from repro.core.plans import (
    BaseCube,
    MemberIn,
    PerspectiveNode,
    SelectNode,
    execute_plan,
)
from repro.workload.workforce import WorkforceConfig, build_workforce


@pytest.fixture(scope="module")
def workforce_cube():
    workforce = build_workforce(
        WorkforceConfig(
            n_employees=250,
            n_departments=10,
            n_changing=25,
            n_accounts=5,
            n_scenarios=2,
            seed=31,
        )
    )
    members = frozenset(workforce.changing_employees[:5])
    plan = SelectNode(
        PerspectiveNode(BaseCube(), "Department", (0,), Semantics.FORWARD),
        "Department",
        MemberIn(members),
    )
    return workforce.cube, plan


def test_unoptimized_plan(benchmark, workforce_cube):
    cube, plan = workforce_cube
    result = benchmark(lambda: execute_plan(plan, cube))
    benchmark.extra_info["result_cells"] = result.n_leaf_cells


def test_optimized_plan(benchmark, workforce_cube):
    cube, plan = workforce_cube
    optimized, trace = optimize(plan)
    assert "push-select-through-perspective" in trace.rules_fired
    result = benchmark(lambda: execute_plan(optimized, cube))
    benchmark.extra_info["result_cells"] = result.n_leaf_cells
    benchmark.extra_info["rules_fired"] = ",".join(trace.rules_fired)


def test_plans_agree(workforce_cube):
    cube, plan = workforce_cube
    optimized, _ = optimize(plan)
    assert execute_plan(plan, cube).leaf_equal(execute_plan(optimized, cube))
