"""Ablation — pebbling heuristic vs naive scan order (Sec. 5.2).

Benchmarks the pebbling computation itself and, in ``extra_info``, records
the max co-resident chunk counts for the heuristic order vs the naive
linear order — the quantity Sec. 5.2 minimises.
"""

from __future__ import annotations

import pytest

from repro.core.merge_graph import build_merge_graph, fig8_example_graph
from repro.core.pebbling import pebble, pebbles_for_order
from repro.core.perspective import PerspectiveSet, Semantics
from repro.workload.retail import RetailConfig, build_retail

VARYING_COUNTS = (2, 4, 8)


def _graph(n_varying: int):
    retail = build_retail(
        RetailConfig(
            n_groups=6,
            products_per_group=4,
            n_varying=n_varying,
            max_moves=3,
            n_locations=2,
            seed=17,
        )
    )
    chunked, spec = retail.chunked(chunk_shape=(1, 3, 2))
    graph = build_merge_graph(
        spec, PerspectiveSet([0, 6], 12), Semantics.FORWARD
    )
    return graph, chunked.grid


@pytest.mark.parametrize("n_varying", VARYING_COUNTS)
def test_pebbling_heuristic(benchmark, n_varying):
    graph, grid = _graph(n_varying)

    result = benchmark(lambda: pebble(graph))
    naive_order = sorted(
        graph.nodes, key=lambda c: grid.linear_index(c, grid.default_order())
    )
    benchmark.extra_info["heuristic_pebbles"] = result.max_pebbles
    benchmark.extra_info["naive_pebbles"] = (
        pebbles_for_order(graph, naive_order) if graph.number_of_nodes() else 0
    )
    benchmark.extra_info["nodes"] = graph.number_of_nodes()
    benchmark.extra_info["edges"] = graph.number_of_edges()


def test_pebbling_fig9_example(benchmark):
    """The paper's own Fig. 9 instance: heuristic finds the 3-pebble optimum."""
    graph = fig8_example_graph()
    result = benchmark(lambda: pebble(graph))
    assert result.max_pebbles == 3
    benchmark.extra_info["heuristic_pebbles"] = result.max_pebbles
    benchmark.extra_info["naive_pebbles"] = pebbles_for_order(
        graph, sorted(graph.nodes)
    )
