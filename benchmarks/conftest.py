"""Shared benchmark fixtures: workforce cubes built once per session."""

from __future__ import annotations

import pytest

from repro.bench.fig11 import bench_config
from repro.bench.fig13 import fig13_config
from repro.workload.workforce import build_workforce


@pytest.fixture(scope="session")
def fig11_setup():
    """Workforce cube + varying spec for the Fig. 11 sweep."""
    workforce = build_workforce(bench_config(scale=0.6))
    chunked, spec = workforce.chunked()
    return workforce, chunked, spec


@pytest.fixture(scope="session")
def fig13_setup():
    """Workforce cube with exactly-4-move employees for Fig. 13."""
    config = fig13_config(n_changing=50)
    workforce = build_workforce(config)
    chunked, spec = workforce.chunked(
        chunk_shape=(4, 3, config.n_accounts, config.n_scenarios, 1, 1, 1)
    )
    return workforce, chunked, spec
