"""Fig. 11 — number of perspectives vs query performance.

Three strategies over all changing employees, 1..12 perspectives:
Multiple-MDX simulation (upper bound), direct Static, direct Dynamic
Forward.  The paper's claims: all linear; direct multi-perspective beats
the simulation; static and forward converge beyond ~6 perspectives.
"""

from __future__ import annotations

import pytest

from repro.bench.fig11 import spread_perspectives
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import (
    run_multiple_mdx_simulation,
    run_perspective_query,
)

PERSPECTIVE_COUNTS = (1, 4, 8, 12)


def _pset(k: int) -> PerspectiveSet:
    return PerspectiveSet(spread_perspectives(k), 12)


@pytest.mark.parametrize("k", PERSPECTIVE_COUNTS)
def test_fig11_static(benchmark, fig11_setup, k):
    workforce, chunked, spec = fig11_setup
    members = workforce.changing_employees
    pset = _pset(k)

    def run():
        return run_perspective_query(spec, members, pset, Semantics.STATIC)

    result = benchmark(run)
    chunked.store.reset_stats()
    probe = run_perspective_query(spec, members, pset, Semantics.STATIC)
    benchmark.extra_info.update(probe.io)
    benchmark.extra_info["perspectives"] = k
    benchmark.extra_info["instances"] = len(result.rows)


@pytest.mark.parametrize("k", PERSPECTIVE_COUNTS)
def test_fig11_dynamic_forward(benchmark, fig11_setup, k):
    workforce, chunked, spec = fig11_setup
    members = workforce.changing_employees
    pset = _pset(k)

    def run():
        return run_perspective_query(spec, members, pset, Semantics.FORWARD)

    result = benchmark(run)
    chunked.store.reset_stats()
    probe = run_perspective_query(spec, members, pset, Semantics.FORWARD)
    benchmark.extra_info.update(probe.io)
    benchmark.extra_info["perspectives"] = k
    benchmark.extra_info["instances"] = len(result.rows)


@pytest.mark.parametrize("k", PERSPECTIVE_COUNTS)
def test_fig11_multiple_mdx_simulation(benchmark, fig11_setup, k):
    workforce, chunked, spec = fig11_setup
    members = workforce.changing_employees
    pset = _pset(k)

    def run():
        return run_multiple_mdx_simulation(spec, members, pset, Semantics.STATIC)

    benchmark(run)
    chunked.store.reset_stats()
    probe = run_multiple_mdx_simulation(spec, members, pset, Semantics.STATIC)
    benchmark.extra_info["chunk_reads"] = probe.chunks_read
    benchmark.extra_info["perspectives"] = k
